//! Pruned Landmark Labeling (PLL) for graph reachability.
//!
//! A from-scratch 2-hop cover index in the style of Akiba, Iwata and
//! Yoshida's pruned landmark labeling, which the original GeoReach paper
//! used as one of its SpaReach back-ends ("SpaReach-PLL", Section 2.2.1 of
//! the paper). Every vertex `v` keeps two sorted landmark lists:
//!
//! * `L_out(v)` — landmarks reachable *from* `v`,
//! * `L_in(v)`  — landmarks that reach `v`,
//!
//! and `GReach(u, t)` holds iff `(L_out(u) ∪ {u})` and `(L_in(t) ∪ {t})`
//! share a landmark. Landmarks are processed in decreasing degree order;
//! each performs one forward and one backward BFS whose expansions are
//! *pruned* whenever the labels built so far already answer the pair —
//! the pruning is what keeps the label lists short on real graphs.
//!
//! The input must be a DAG (condense SCCs first). Unlike BFL, PLL is a
//! pure Label-Only scheme: queries never touch the graph.

use crate::Reachability;
use gsr_graph::{DiGraph, VertexId};
use std::collections::VecDeque;

/// The PLL reachability index.
///
/// ```
/// use gsr_graph::graph_from_edges;
/// use gsr_reach::pll::PllIndex;
/// use gsr_reach::Reachability;
///
/// let g = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (1, 4)]);
/// let idx = PllIndex::build(&g);
/// assert!(idx.reaches(0, 4));
/// assert!(!idx.reaches(4, 0));
/// ```
#[derive(Debug, Clone)]
pub struct PllIndex {
    /// Landmark rank of every vertex (0 = highest-degree, processed first).
    rank: Vec<u32>,
    /// CSR label lists over ranks, sorted ascending.
    out_offsets: Vec<u32>,
    out_labels: Vec<u32>,
    in_offsets: Vec<u32>,
    in_labels: Vec<u32>,
}

impl PllIndex {
    /// Builds the index over a DAG.
    pub fn build(g: &DiGraph) -> Self {
        let n = g.num_vertices();

        // Landmark order: total degree descending, ties by id. High-degree
        // hubs cover the most pairs, which maximizes pruning.
        let mut order: Vec<VertexId> = (0..n as VertexId).collect();
        order.sort_by_key(|&v| {
            (std::cmp::Reverse(g.out_degree(v) + g.in_degree(v)), v)
        });
        let mut rank = vec![0u32; n];
        for (k, &v) in order.iter().enumerate() {
            rank[v as usize] = k as u32;
        }

        // Growable label lists during construction.
        let mut out_lists: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut in_lists: Vec<Vec<u32>> = vec![Vec::new(); n];

        // `covered(u, t)` via the labels built so far, treating u and t as
        // implicit members of their own lists.
        let covered = |u: usize, t: usize,
                       rank: &[u32],
                       out_lists: &[Vec<u32>],
                       in_lists: &[Vec<u32>]| {
            if u == t {
                return true;
            }
            let a = &out_lists[u];
            let b = &in_lists[t];
            // Sorted-merge intersection, including the implicit self ranks.
            let (mut i, mut j) = (0usize, 0usize);
            let ra = rank[u];
            let rb = rank[t];
            // Check implicit members first.
            if a.binary_search(&rb).is_ok() || b.binary_search(&ra).is_ok() {
                return true;
            }
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => return true,
                }
            }
            false
        };

        let mut queue: VecDeque<VertexId> = VecDeque::new();
        let mut visited = vec![false; n];
        for (k, &w) in order.iter().enumerate() {
            let k = k as u32;

            // Forward pruned BFS: w's descendants gain w in L_in.
            visited.iter_mut().for_each(|x| *x = false);
            queue.clear();
            queue.push_back(w);
            visited[w as usize] = true;
            while let Some(v) = queue.pop_front() {
                if v != w {
                    if covered(w as usize, v as usize, &rank, &out_lists, &in_lists) {
                        continue; // already answered: prune the subtree
                    }
                    in_lists[v as usize].push(k);
                }
                for &x in g.out_neighbors(v) {
                    if !visited[x as usize] {
                        visited[x as usize] = true;
                        queue.push_back(x);
                    }
                }
            }

            // Backward pruned BFS: w's ancestors gain w in L_out.
            visited.iter_mut().for_each(|x| *x = false);
            queue.clear();
            queue.push_back(w);
            visited[w as usize] = true;
            while let Some(v) = queue.pop_front() {
                if v != w {
                    if covered(v as usize, w as usize, &rank, &out_lists, &in_lists) {
                        continue;
                    }
                    out_lists[v as usize].push(k);
                }
                for &x in g.in_neighbors(v) {
                    if !visited[x as usize] {
                        visited[x as usize] = true;
                        queue.push_back(x);
                    }
                }
            }
        }

        // Freeze into CSR. Lists are pushed in increasing rank, so they are
        // already sorted.
        let flatten = |lists: Vec<Vec<u32>>| {
            let mut offsets = Vec::with_capacity(lists.len() + 1);
            let mut labels = Vec::new();
            offsets.push(0u32);
            for list in lists {
                debug_assert!(list.windows(2).all(|w| w[0] < w[1]));
                labels.extend_from_slice(&list);
                offsets.push(labels.len() as u32);
            }
            (offsets, labels)
        };
        let (out_offsets, out_labels) = flatten(out_lists);
        let (in_offsets, in_labels) = flatten(in_lists);

        PllIndex { rank, out_offsets, out_labels, in_offsets, in_labels }
    }

    fn out_list(&self, v: usize) -> &[u32] {
        &self.out_labels[self.out_offsets[v] as usize..self.out_offsets[v + 1] as usize]
    }

    fn in_list(&self, v: usize) -> &[u32] {
        &self.in_labels[self.in_offsets[v] as usize..self.in_offsets[v + 1] as usize]
    }

    /// Total number of labels (both directions) — the size statistic of
    /// 2-hop schemes.
    pub fn num_labels(&self) -> usize {
        self.out_labels.len() + self.in_labels.len()
    }
}

impl Reachability for PllIndex {
    fn reaches(&self, from: VertexId, to: VertexId) -> bool {
        let (f, t) = (from as usize, to as usize);
        if f == t {
            return true;
        }
        let a = self.out_list(f);
        let b = self.in_list(t);
        if a.binary_search(&self.rank[t]).is_ok() || b.binary_search(&self.rank[f]).is_ok() {
            return true;
        }
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    fn heap_bytes(&self) -> usize {
        (self.rank.len()
            + self.out_offsets.len()
            + self.out_labels.len()
            + self.in_offsets.len()
            + self.in_labels.len())
            * 4
    }

    fn name(&self) -> &'static str {
        "PLL"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::reaches_bfs;
    use gsr_graph::graph_from_edges;

    fn check_all_pairs(g: &DiGraph) {
        let idx = PllIndex::build(g);
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(
                    idx.reaches(u, v),
                    reaches_bfs(g, u, v),
                    "PLL wrong for ({u}, {v})"
                );
            }
        }
    }

    #[test]
    fn chains_diamonds_forests() {
        check_all_pairs(&graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]));
        check_all_pairs(&graph_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]));
        check_all_pairs(&graph_from_edges(
            9,
            &[(0, 1), (0, 2), (1, 3), (2, 3), (4, 5), (5, 6), (4, 6), (6, 1), (7, 8)],
        ));
    }

    #[test]
    fn hub_centric_graph_has_compact_labels() {
        // A star through a hub: the hub is processed first and covers all
        // pairs, so label lists stay tiny.
        let mut edges = Vec::new();
        for i in 1..20u32 {
            edges.push((i, 0));
            edges.push((0, 20 + i));
        }
        let g = graph_from_edges(40, &edges);
        let idx = PllIndex::build(&g);
        check_all_pairs(&g);
        // Every source/sink needs only the hub in its list.
        assert!(
            idx.num_labels() <= 2 * 40,
            "pruning must keep 2-hop labels near-minimal, got {}",
            idx.num_labels()
        );
    }

    #[test]
    fn isolated_and_empty() {
        check_all_pairs(&graph_from_edges(3, &[]));
        let g = graph_from_edges(1, &[]);
        let idx = PllIndex::build(&g);
        assert!(idx.reaches(0, 0));
    }
}
