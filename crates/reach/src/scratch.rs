//! Reusable per-thread traversal buffers for the guided-DFS fallbacks.
//!
//! The labeling indexes answer most `GReach` queries from their labels
//! alone, but BFL, GRAIL and FELINE fall back to a pruned DFS when the
//! labels cannot decide. A naive fallback allocates a `visited` vector and
//! a stack per query, which dominates the cost of exactly the queries that
//! are already the slow ones. [`TraversalScratch`] keeps both buffers
//! alive per thread and replaces the O(n) `visited` clear with an epoch
//! stamp, so steady-state queries perform zero heap allocations.
//!
//! Access goes through [`with_traversal_scratch`], a take/put thread-local:
//! the scratch is moved out of the slot for the duration of the closure and
//! moved back afterwards. A re-entrant call simply builds a fresh scratch
//! (allocating, but correct), so nesting can never observe aliased buffers
//! or panic on a borrow check.

use gsr_graph::VertexId;
use std::cell::Cell;

/// Reusable DFS state: an epoch-stamped visited array and a vertex stack.
#[derive(Debug, Default)]
pub struct TraversalScratch {
    /// `visited[v] == epoch` means `v` was visited by the *current*
    /// traversal; stale stamps from earlier traversals are ignored.
    visited: Vec<u32>,
    epoch: u32,
    /// The DFS stack, cleared (but not shrunk) by [`TraversalScratch::begin`].
    pub stack: Vec<VertexId>,
}

impl TraversalScratch {
    /// A fresh scratch with empty buffers.
    pub fn new() -> Self {
        TraversalScratch::default()
    }

    /// Starts a new traversal over a graph of `n` vertices: grows the
    /// visited array if needed, advances the epoch (recycling all previous
    /// marks in O(1)) and clears the stack. On the rare epoch wrap-around
    /// the stamps are re-zeroed once.
    pub fn begin(&mut self, n: usize) {
        if self.visited.len() < n {
            self.visited.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.visited.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        self.stack.clear();
    }

    /// Marks `v` visited; returns `true` when `v` was not yet visited by
    /// the current traversal.
    #[inline]
    pub fn mark(&mut self, v: VertexId) -> bool {
        let slot = &mut self.visited[v as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }

    /// Whether `v` was visited by the current traversal.
    #[inline]
    pub fn is_marked(&self, v: VertexId) -> bool {
        self.visited[v as usize] == self.epoch
    }
}

thread_local! {
    static SCRATCH: Cell<Option<Box<TraversalScratch>>> = const { Cell::new(None) };
}

/// Runs `f` with this thread's [`TraversalScratch`]. The scratch is taken
/// out of the thread-local slot for the duration of the call, so a nested
/// call falls back to a fresh (heap-allocated) scratch instead of aliasing.
pub fn with_traversal_scratch<R>(f: impl FnOnce(&mut TraversalScratch) -> R) -> R {
    SCRATCH.with(|slot| {
        let mut scratch = slot.take().unwrap_or_default();
        let out = f(&mut scratch);
        slot.set(Some(scratch));
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_recycle_marks_without_clearing() {
        let mut s = TraversalScratch::new();
        s.begin(4);
        assert!(s.mark(2));
        assert!(!s.mark(2));
        assert!(s.is_marked(2));
        s.begin(4);
        assert!(!s.is_marked(2), "previous traversal's marks are stale");
        assert!(s.mark(2));
    }

    #[test]
    fn begin_grows_for_larger_graphs() {
        let mut s = TraversalScratch::new();
        s.begin(2);
        s.mark(1);
        s.begin(100);
        assert!(!s.is_marked(99));
        assert!(s.mark(99));
    }

    #[test]
    fn epoch_wraparound_rezeroes() {
        let mut s = TraversalScratch::new();
        s.begin(3);
        s.mark(0);
        s.epoch = u32::MAX; // force the next begin to wrap
        s.begin(3);
        assert_eq!(s.epoch, 1);
        assert!(!s.is_marked(0));
        assert!(s.mark(0));
    }

    #[test]
    fn thread_local_scratch_is_reused() {
        let first = with_traversal_scratch(|s| {
            s.begin(8);
            s.mark(3);
            s as *const TraversalScratch as usize
        });
        let second = with_traversal_scratch(|s| s as *const TraversalScratch as usize);
        assert_eq!(first, second, "same thread reuses the same buffers");
    }

    #[test]
    fn nested_use_falls_back_to_a_fresh_scratch() {
        with_traversal_scratch(|outer| {
            outer.begin(4);
            outer.mark(1);
            with_traversal_scratch(|inner| {
                inner.begin(4);
                assert!(!inner.is_marked(1), "nested scratch is independent");
            });
            assert!(outer.is_marked(1));
        });
    }
}
