//! Property-based tests: every reachability index must agree with the
//! transitive closure on random DAGs, and the two labeling constructions
//! must agree with each other.

use gsr_graph::{graph_from_edges, DiGraph, VertexId};
use gsr_reach::bfl::{BflIndex, BflParams};
use gsr_reach::bfs::TransitiveClosure;
use gsr_reach::dynamic::DynamicIntervalLabeling;
use gsr_reach::feline::FelineIndex;
use gsr_reach::grail::{GrailIndex, GrailParams};
use gsr_reach::pll::PllIndex;
use gsr_graph::dfs::ForestStrategy;
use gsr_reach::interval::{BuildOptions, Builder, IntervalLabeling};
use gsr_reach::Reachability;
use proptest::prelude::*;

fn arb_dag(max_n: usize, max_m: usize) -> impl Strategy<Value = DiGraph> {
    (2..max_n).prop_flat_map(move |n| {
        prop::collection::vec((0..n as VertexId, 0..n as VertexId), 0..max_m).prop_map(
            move |edges| {
                let dag_edges: Vec<_> = edges
                    .into_iter()
                    .filter(|&(u, v)| u != v)
                    .map(|(u, v)| if u < v { (u, v) } else { (v, u) })
                    .collect();
                graph_from_edges(n, &dag_edges)
            },
        )
    })
}

fn assert_oracle_matches(g: &DiGraph, oracle: &dyn Reachability) -> Result<(), TestCaseError> {
    let tc = TransitiveClosure::of(g);
    for u in g.vertices() {
        for v in g.vertices() {
            prop_assert_eq!(
                oracle.reaches(u, v),
                tc.reaches(u, v),
                "{} wrong for ({}, {})",
                oracle.name(),
                u,
                v
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn interval_bottom_up_matches_closure(g in arb_dag(30, 120)) {
        let l = IntervalLabeling::build(&g);
        assert_oracle_matches(&g, &l)?;
    }

    #[test]
    fn interval_paper_matches_closure(g in arb_dag(22, 70)) {
        let l = IntervalLabeling::build_with(
            &g,
            BuildOptions { builder: Builder::PaperFaithful, compress: true, ..BuildOptions::default() },
        );
        assert_oracle_matches(&g, &l)?;
    }

    #[test]
    fn interval_uncompressed_matches_closure(g in arb_dag(25, 90)) {
        let l = IntervalLabeling::build_with(
            &g,
            BuildOptions { builder: Builder::BottomUp, compress: false, ..BuildOptions::default() },
        );
        assert_oracle_matches(&g, &l)?;
    }

    #[test]
    fn all_forest_strategies_yield_correct_labelings(g in arb_dag(25, 90)) {
        for forest in [
            ForestStrategy::VertexOrder,
            ForestStrategy::HighDegreeFirst,
            ForestStrategy::LowDegreeFirst,
            ForestStrategy::Random(3),
        ] {
            let l = IntervalLabeling::build_with(
                &g,
                BuildOptions { builder: Builder::BottomUp, compress: true, forest, ..BuildOptions::default() },
            );
            assert_oracle_matches(&g, &l)?;
        }
    }

    #[test]
    fn builders_produce_identical_compressed_labels(g in arb_dag(25, 90)) {
        let bottom = IntervalLabeling::build(&g);
        let paper = IntervalLabeling::build_with(
            &g,
            BuildOptions { builder: Builder::PaperFaithful, compress: true, ..BuildOptions::default() },
        );
        for v in g.vertices() {
            prop_assert_eq!(bottom.intervals(v), paper.intervals(v), "vertex {}", v);
        }
        prop_assert_eq!(bottom.num_labels(), paper.num_labels());
    }

    #[test]
    fn compression_never_increases_label_count(g in arb_dag(30, 120)) {
        let compressed = IntervalLabeling::build(&g);
        let raw = IntervalLabeling::build_with(
            &g,
            BuildOptions { builder: Builder::BottomUp, compress: false, ..BuildOptions::default() },
        );
        prop_assert!(compressed.num_labels() <= raw.num_labels());
    }

    #[test]
    fn descendant_counts_match_closure(g in arb_dag(30, 120)) {
        let l = IntervalLabeling::build(&g);
        let tc = TransitiveClosure::of(&g);
        for v in g.vertices() {
            let expected = g.vertices().filter(|&u| tc.reaches(v, u)).count();
            prop_assert_eq!(l.num_descendants(v), expected, "vertex {}", v);
            prop_assert_eq!(l.descendants(v).count(), expected);
        }
    }

    #[test]
    fn bfl_matches_closure(g in arb_dag(30, 120)) {
        let idx = BflIndex::build(&g);
        assert_oracle_matches(&g, &idx)?;
    }

    #[test]
    fn bfl_with_tiny_filters_matches_closure(g in arb_dag(25, 90)) {
        // Heavy Bloom collisions must only cost time, never correctness.
        let idx = BflIndex::build_with(&g, BflParams { filter_words: 1, seed: 7, ..BflParams::default() });
        assert_oracle_matches(&g, &idx)?;
    }

    #[test]
    fn pll_matches_closure(g in arb_dag(30, 120)) {
        let idx = PllIndex::build(&g);
        assert_oracle_matches(&g, &idx)?;
    }

    #[test]
    fn feline_matches_closure(g in arb_dag(30, 120)) {
        let idx = FelineIndex::build(&g);
        assert_oracle_matches(&g, &idx)?;
    }

    #[test]
    fn grail_matches_closure(g in arb_dag(30, 120)) {
        let idx = GrailIndex::build(&g);
        assert_oracle_matches(&g, &idx)?;
    }

    #[test]
    fn grail_one_traversal_matches_closure(g in arb_dag(25, 90)) {
        let idx = GrailIndex::build_with(&g, GrailParams { num_traversals: 1, seed: 3, ..GrailParams::default() });
        assert_oracle_matches(&g, &idx)?;
    }

    #[test]
    fn feline_dominance_never_refutes_reachable_pairs(g in arb_dag(25, 90)) {
        // Soundness of the negative cut: the fallback only runs when
        // dominance holds, so reachable pairs must always dominate.
        let idx = FelineIndex::build(&g);
        let tc = TransitiveClosure::of(&g);
        for u in g.vertices() {
            for v in g.vertices() {
                if u != v && tc.reaches(u, v) {
                    let (xu, yu) = idx.coordinates(u);
                    let (xv, yv) = idx.coordinates(v);
                    prop_assert!(xu < xv && yu < yv, "({}, {}) reachable but not dominated", u, v);
                }
            }
        }
    }

    #[test]
    fn all_reachability_indexes_agree(g in arb_dag(25, 90)) {
        let int = IntervalLabeling::build(&g);
        let bfl = BflIndex::build(&g);
        let pll = PllIndex::build(&g);
        let fel = FelineIndex::build(&g);
        for u in g.vertices() {
            for v in g.vertices() {
                let expected = int.reaches(u, v);
                prop_assert_eq!(bfl.reaches(u, v), expected, "BFL vs INT at ({}, {})", u, v);
                prop_assert_eq!(pll.reaches(u, v), expected, "PLL vs INT at ({}, {})", u, v);
                prop_assert_eq!(fel.reaches(u, v), expected, "FELINE vs INT at ({}, {})", u, v);
            }
        }
    }

    #[test]
    fn dynamic_incremental_matches_closure(g in arb_dag(20, 60)) {
        let mut dynamic = DynamicIntervalLabeling::new();
        for _ in 0..g.num_vertices() {
            dynamic.add_vertex();
        }
        for (u, v) in g.edges() {
            dynamic.add_edge(u, v).expect("DAG edges never cycle");
        }
        assert_oracle_matches(&g, &dynamic)?;
    }

    #[test]
    fn posts_form_permutation_and_reflexivity(g in arb_dag(40, 150)) {
        let l = IntervalLabeling::build(&g);
        let mut posts: Vec<u32> = g.vertices().map(|v| l.post(v)).collect();
        posts.sort_unstable();
        prop_assert_eq!(posts, (1..=g.num_vertices() as u32).collect::<Vec<_>>());
        for v in g.vertices() {
            prop_assert!(l.reaches(v, v), "reflexivity at {}", v);
            prop_assert_eq!(l.vertex_of_post(l.post(v)), v);
        }
    }

    #[test]
    fn labels_are_sorted_and_disjoint(g in arb_dag(40, 150)) {
        let l = IntervalLabeling::build(&g);
        for v in g.vertices() {
            let labels = l.intervals(v);
            for w in labels.windows(2) {
                // Strictly separated (compressed => non-adjacent too).
                prop_assert!(w[0].hi + 1 < w[1].lo, "labels of {} not compressed: {:?}", v, labels);
            }
        }
    }
}
