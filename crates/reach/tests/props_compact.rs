//! Property-based tests for the compact label machinery behind the
//! cache-optimized layouts: galloping containment must agree with binary
//! search and a linear scan on adversarial sorted interval arrays, and the
//! varint / delta-array / compact-label encodings must round-trip
//! losslessly.

use gsr_graph::{graph_from_edges, DiGraph, VertexId};
use gsr_reach::compact::{read_varint, write_varint, CompactLabels, DeltaArray};
use gsr_reach::interval::{binary_covers, gallop_covers, Interval, IntervalLabeling};
use proptest::prelude::*;

fn arb_dag(max_n: usize, max_m: usize) -> impl Strategy<Value = DiGraph> {
    (2..max_n).prop_flat_map(move |n| {
        prop::collection::vec((0..n as VertexId, 0..n as VertexId), 0..max_m).prop_map(
            move |edges| {
                let dag_edges: Vec<_> = edges
                    .into_iter()
                    .filter(|&(u, v)| u != v)
                    .map(|(u, v)| if u < v { (u, v) } else { (v, u) })
                    .collect();
                graph_from_edges(n, &dag_edges)
            },
        )
    })
}

/// Sorted disjoint interval lists from (gap, length) runs. Gap 0 makes
/// adjacent-but-disjoint neighbours — the adversarial case for any
/// containment search that assumes compressed (non-adjacent) labels.
fn intervals_from_runs(runs: &[(u32, u32)]) -> Vec<Interval> {
    let mut labels = Vec::with_capacity(runs.len());
    let mut next = 1u32;
    for &(gap, len) in runs {
        let lo = next + gap;
        let hi = lo + len;
        labels.push(Interval { lo, hi });
        next = hi + 1;
    }
    labels
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gallop_and_binary_containment_agree_with_linear_scan(
        runs in prop::collection::vec((0u32..3, 0u32..40), 0..80),
        probes in prop::collection::vec(0u32..5000, 0..40),
    ) {
        let labels = intervals_from_runs(&runs);
        let linear = |p: u32| labels.iter().any(|l| l.lo <= p && p <= l.hi);
        // Random probes plus every boundary and off-by-one around it.
        let mut all = probes;
        all.push(0);
        for l in &labels {
            all.extend([l.lo.saturating_sub(1), l.lo, l.hi, l.hi + 1]);
        }
        for p in all {
            let expected = linear(p);
            prop_assert_eq!(gallop_covers(&labels, p), expected, "gallop at {}", p);
            prop_assert_eq!(binary_covers(&labels, p), expected, "binary at {}", p);
        }
    }

    #[test]
    fn varint_round_trips_any_u32(vals in prop::collection::vec(any::<u32>(), 0..100)) {
        let mut buf = Vec::new();
        for &v in &vals {
            write_varint(&mut buf, v);
        }
        let mut pos = 0usize;
        for &v in &vals {
            prop_assert_eq!(read_varint(&buf, &mut pos), Some(v));
        }
        prop_assert_eq!(pos, buf.len());
        prop_assert_eq!(read_varint(&buf, &mut pos), None, "read past the end");
    }

    #[test]
    fn delta_array_round_trips_adversarial_sorted_arrays(
        deltas in prop::collection::vec((0u8..4, 1u32..100_000), 0..200),
        start in 0usize..220,
    ) {
        // Runs of duplicates, tiny steps, and huge multi-byte-varint jumps.
        let mut values = Vec::with_capacity(deltas.len());
        let mut acc = 0u32;
        for (kind, raw) in deltas {
            let d = match kind {
                0 => 0,
                1 => raw % 4 + 1,
                2 => raw,
                _ => 1u32 << 24,
            };
            acc = acc.saturating_add(d);
            values.push(acc);
        }
        let arr = DeltaArray::from_sorted(&values).unwrap();
        prop_assert_eq!(arr.len(), values.len());
        prop_assert_eq!(arr.to_vec(), values.clone());
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(arr.get(i), v, "random access at {}", i);
        }
        let start = start.min(values.len());
        let tail: Vec<u32> = arr.iter_from(start).collect();
        prop_assert_eq!(&tail[..], &values[start..], "cursor from {}", start);
    }

    #[test]
    fn delta_array_rejects_any_decrease(
        values in prop::collection::vec(0u32..10_000, 2..60),
        at in 0usize..60,
    ) {
        let mut sorted = values;
        sorted.sort_unstable();
        let at = at % (sorted.len() - 1);
        // Force a strict decrease at `at`.
        sorted[at] = sorted[at + 1].saturating_add(1);
        let err = DeltaArray::from_sorted(&sorted).unwrap_err();
        prop_assert!(err.contains("decrease"), "diagnostic: {}", err);
    }

    #[test]
    fn compact_labels_match_the_full_labeling(g in arb_dag(35, 140)) {
        let full = IntervalLabeling::build(&g);
        let compact = CompactLabels::from_labeling(&full);
        let n = g.num_vertices() as u32;
        prop_assert_eq!(compact.max_post(), n);
        prop_assert_eq!(compact.num_labels(), full.num_labels());
        for v in g.vertices() {
            let decoded: Vec<Interval> = compact.intervals(v).collect();
            prop_assert_eq!(&decoded[..], full.intervals(v), "labels of {}", v);
            prop_assert_eq!(compact.num_intervals(v), full.intervals(v).len());
            prop_assert_eq!(compact.num_descendants(v), full.num_descendants(v));
            for p in 1..=n {
                prop_assert_eq!(
                    compact.covers_post(v, p),
                    gallop_covers(full.intervals(v), p),
                    "covers_post({}, {})", v, p
                );
            }
        }
    }

    #[test]
    fn compact_labels_parts_round_trip(g in arb_dag(30, 120)) {
        let compact = CompactLabels::from_labeling(&IntervalLabeling::build(&g));
        let (max_post, offsets, bytes) = compact.parts();
        let back = CompactLabels::from_parts(max_post, offsets.to_vec(), bytes.to_vec())
            .expect("parts of a valid encoding must validate");
        prop_assert_eq!(back.max_post(), compact.max_post());
        prop_assert_eq!(back.num_labels(), compact.num_labels());
        for v in g.vertices() {
            prop_assert_eq!(
                back.intervals(v).collect::<Vec<_>>(),
                compact.intervals(v).collect::<Vec<_>>(),
                "vertex {}", v
            );
        }
    }
}
