//! A sharded LRU cache of `RangeReach` answers.
//!
//! Geosocial query streams repeat themselves: popular vertices and popular
//! regions (a city center, a venue cluster) recur across clients, and a
//! `RangeReach` answer over an immutable index is a pure function of
//! `(vertex, rectangle)`. [`ResultCache`] memoizes those answers so a
//! repeated query costs one hash probe instead of an index traversal.
//!
//! ## Sharding
//!
//! The cache is split into [`NUM_SHARDS`] independent segments, each its
//! own mutex-protected LRU. A query locks exactly one shard, chosen by a
//! hash of the canonical key, so concurrent connection handlers rarely
//! contend. Hit/miss/eviction counters are relaxed atomics outside the
//! locks.
//!
//! ## Key canonicalization
//!
//! The key is the query vertex plus the four rectangle coordinates mapped
//! through [`f64::to_bits`], with negative zero folded onto positive zero
//! first. Bit-level keys make equality exact (no epsilon surprises), and
//! the `-0.0` fold keeps the one IEEE-754 case where distinct bit patterns
//! compare equal from splitting cache entries. `NaN` rectangles never
//! reach the cache: only *answered* queries are inserted, and a `NaN`
//! rectangle fails validation before evaluation.
//!
//! Entries are only ever inserted for successful answers — errors,
//! timeouts and cancellations are not cached, so a transient failure can
//! never be replayed from the cache.
//!
//! ## Epochs and `clear`
//!
//! A hot `RELOAD` replaces the served index, which invalidates every
//! cached answer. [`ResultCache::clear`] drops the entries *and* bumps an
//! epoch counter that is part of every cache key: a batch that started on
//! the old index captures the old epoch ([`ResultCache::epoch`]) and
//! inserts through [`ResultCache::insert_at`], so even if it races the
//! clear and lands an entry afterwards, that entry carries the stale epoch
//! and can never be returned for a post-reload lookup. No lock is held
//! across the swap; staleness is structural, not timing-dependent.

use gsr_geo::Rect;
use gsr_graph::VertexId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of independently locked cache segments.
pub const NUM_SHARDS: usize = 8;

/// Sentinel slot index for the intrusive LRU list.
const NIL: u32 = u32::MAX;

/// Canonical bit pattern of one rectangle coordinate.
#[inline]
fn canon_bits(x: f64) -> u64 {
    // Fold -0.0 onto +0.0: they compare equal as queries, so they must
    // compare equal as keys.
    if x == 0.0 {
        0.0f64.to_bits()
    } else {
        x.to_bits()
    }
}

/// The canonical cache key of a `RangeReach` query, stamped with the
/// index epoch it was answered under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    epoch: u64,
    vertex: VertexId,
    rect: [u64; 4],
}

impl CacheKey {
    fn new(epoch: u64, vertex: VertexId, rect: &Rect) -> Self {
        CacheKey {
            epoch,
            vertex,
            rect: [
                canon_bits(rect.min_x),
                canon_bits(rect.min_y),
                canon_bits(rect.max_x),
                canon_bits(rect.max_y),
            ],
        }
    }

    /// FNV-1a over the key bytes; used only to pick a shard (the in-shard
    /// map uses the std hasher).
    fn shard_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        mix(self.epoch);
        mix(u64::from(self.vertex));
        for &w in &self.rect {
            mix(w);
        }
        h
    }
}

/// One cache entry in the slot arena, threaded into the shard's intrusive
/// doubly-linked recency list.
#[derive(Debug)]
struct Slot {
    key: CacheKey,
    value: bool,
    prev: u32,
    next: u32,
}

/// One mutex-protected cache segment: a hash map into a slot arena whose
/// slots form a doubly-linked list ordered by recency (head = MRU).
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<CacheKey, u32>,
    slots: Vec<Slot>,
    head: u32,
    tail: u32,
    free: Vec<u32>,
}

impl Shard {
    fn new() -> Self {
        Shard { head: NIL, tail: NIL, ..Shard::default() }
    }

    /// Unlinks slot `i` from the recency list.
    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let s = &self.slots[i as usize];
            (s.prev, s.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slots[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n as usize].prev = prev,
        }
    }

    /// Links slot `i` at the head (most recently used).
    fn link_front(&mut self, i: u32) {
        let old = self.head;
        {
            let s = &mut self.slots[i as usize];
            s.prev = NIL;
            s.next = old;
        }
        match old {
            NIL => self.tail = i,
            h => self.slots[h as usize].prev = i,
        }
        self.head = i;
    }

    fn touch(&mut self, i: u32) {
        if self.head != i {
            self.unlink(i);
            self.link_front(i);
        }
    }

    /// Evicts the least-recently-used entry; returns whether one existed.
    fn evict_tail(&mut self) -> bool {
        let t = self.tail;
        if t == NIL {
            return false;
        }
        self.unlink(t);
        let key = self.slots[t as usize].key;
        self.map.remove(&key);
        self.free.push(t);
        true
    }
}

/// Point-in-time cache counters; see [`ResultCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the index.
    pub misses: u64,
    /// Entries displaced to make room for new ones.
    pub evictions: u64,
}

/// The sharded LRU result cache. `Send + Sync`; share it behind an `Arc`
/// or borrow it from the server that owns it.
#[derive(Debug)]
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_cap: usize,
    epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ResultCache {
    /// A cache holding at most `entries` answers in total, spread over
    /// [`NUM_SHARDS`] segments (each gets `ceil(entries / NUM_SHARDS)`,
    /// but at least one, so tiny capacities still cache something).
    pub fn new(entries: usize) -> Self {
        ResultCache {
            shards: (0..NUM_SHARDS).map(|_| Mutex::new(Shard::new())).collect(),
            per_shard_cap: entries.div_ceil(NUM_SHARDS).max(1),
            epoch: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The current index epoch. A batch captures this alongside its index
    /// handle and passes it to [`ResultCache::get_at`] /
    /// [`ResultCache::insert_at`], so its cache traffic is pinned to the
    /// index it is actually querying.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        &self.shards[(key.shard_hash() % NUM_SHARDS as u64) as usize]
    }

    /// Looks up a cached answer at the current epoch, refreshing its
    /// recency on a hit.
    pub fn get(&self, vertex: VertexId, rect: &Rect) -> Option<bool> {
        self.get_at(self.epoch(), vertex, rect)
    }

    /// Looks up a cached answer under an explicitly captured epoch.
    pub fn get_at(&self, epoch: u64, vertex: VertexId, rect: &Rect) -> Option<bool> {
        let key = CacheKey::new(epoch, vertex, rect);
        // A poisoned shard (a panic while locked) degrades to a miss.
        let Ok(mut shard) = self.shard(&key).lock() else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        match shard.map.get(&key).copied() {
            Some(i) => {
                shard.touch(i);
                let value = shard.slots[i as usize].value;
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores an answer at the current epoch, evicting the shard's
    /// least-recently-used entry when the shard is full. Re-inserting an
    /// existing key refreshes its value and recency.
    pub fn insert(&self, vertex: VertexId, rect: &Rect, value: bool) {
        self.insert_at(self.epoch(), vertex, rect, value);
    }

    /// Stores an answer under an explicitly captured epoch. An insert that
    /// races a [`ResultCache::clear`] lands with its stale epoch baked
    /// into the key, where no post-clear lookup can ever match it.
    pub fn insert_at(&self, epoch: u64, vertex: VertexId, rect: &Rect, value: bool) {
        let key = CacheKey::new(epoch, vertex, rect);
        let Ok(mut shard) = self.shard(&key).lock() else { return };
        if let Some(i) = shard.map.get(&key).copied() {
            shard.slots[i as usize].value = value;
            shard.touch(i);
            return;
        }
        let mut evicted = false;
        if shard.map.len() >= self.per_shard_cap {
            evicted = shard.evict_tail();
        }
        let slot = Slot { key, value, prev: NIL, next: NIL };
        let i = match shard.free.pop() {
            Some(i) => {
                shard.slots[i as usize] = slot;
                i
            }
            None => {
                shard.slots.push(slot);
                (shard.slots.len() - 1) as u32
            }
        };
        shard.link_front(i);
        shard.map.insert(key, i);
        drop(shard);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of entries currently cached, over all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map_or(0, |g| g.map.len())).sum()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached entry and advances the epoch, for a `RELOAD`.
    /// Counters are kept — a reload is not a measurement boundary. Entries
    /// inserted concurrently by batches still running on the old index are
    /// keyed under the old epoch and are unreachable afterwards; they age
    /// out through normal LRU pressure.
    pub fn clear(&self) {
        // Bump the epoch first: once the clear is observable, no reader
        // can hit an old-epoch entry even if a shard drain is in progress.
        self.epoch.fetch_add(1, Ordering::AcqRel);
        for shard in &self.shards {
            if let Ok(mut s) = shard.lock() {
                *s = Shard::new();
            }
        }
    }

    /// Zeroes the hit/miss/eviction counters for a `RESET` request. Cached
    /// entries are untouched — the cache's contents are exact answers over
    /// an immutable index, so there is nothing stale to drop; only the
    /// tallies restart.
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }

    /// The hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(x: f64) -> Rect {
        Rect::new(x, 0.0, x + 1.0, 1.0)
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let cache = ResultCache::new(64);
        assert_eq!(cache.get(1, &rect(0.0)), None);
        cache.insert(1, &rect(0.0), true);
        cache.insert(2, &rect(0.0), false);
        assert_eq!(cache.get(1, &rect(0.0)), Some(true));
        assert_eq!(cache.get(2, &rect(0.0)), Some(false));
        assert_eq!(cache.get(1, &rect(5.0)), None, "different rect, same vertex");
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.evictions, 0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn negative_zero_folds_onto_positive_zero() {
        let cache = ResultCache::new(8);
        cache.insert(7, &Rect::new(-0.0, 0.0, 1.0, 1.0), true);
        assert_eq!(cache.get(7, &Rect::new(0.0, -0.0, 1.0, 1.0)), Some(true));
        assert_eq!(cache.len(), 1, "both spellings share one entry");
    }

    #[test]
    fn lru_evicts_oldest_within_a_shard() {
        // Capacity 8 over 8 shards = 1 entry per shard: the second insert
        // into any shard must evict the first.
        let cache = ResultCache::new(8);
        for i in 0..64u32 {
            cache.insert(i, &rect(0.0), true);
        }
        assert!(cache.len() <= 8, "per-shard caps hold: {}", cache.len());
        // Each shard keeps one entry; every other insert into it evicted.
        assert!(cache.stats().evictions >= 64 - NUM_SHARDS as u64);
    }

    #[test]
    fn touch_on_get_protects_hot_entries() {
        // One shard in isolation: find two keys in the same shard.
        let cache = ResultCache::new(NUM_SHARDS * 2); // 2 per shard
        let mut same_shard: Vec<u32> = Vec::new();
        let probe = CacheKey::new(0, 0, &rect(0.0)).shard_hash() % NUM_SHARDS as u64;
        for v in 0..1024u32 {
            if CacheKey::new(0, v, &rect(0.0)).shard_hash() % NUM_SHARDS as u64 == probe {
                same_shard.push(v);
                if same_shard.len() == 3 {
                    break;
                }
            }
        }
        let [a, b, c] = same_shard[..] else {
            panic!("expected 3 colliding keys");
        };
        cache.insert(a, &rect(0.0), true);
        cache.insert(b, &rect(0.0), true);
        // Touch `a`, then overflow the shard: `b` (now LRU) must go.
        assert_eq!(cache.get(a, &rect(0.0)), Some(true));
        cache.insert(c, &rect(0.0), true);
        assert_eq!(cache.get(a, &rect(0.0)), Some(true), "recently used survives");
        assert_eq!(cache.get(b, &rect(0.0)), None, "LRU entry was evicted");
        assert_eq!(cache.get(c, &rect(0.0)), Some(true));
    }

    #[test]
    fn reset_stats_keeps_entries() {
        let cache = ResultCache::new(64);
        cache.insert(1, &rect(0.0), true);
        assert_eq!(cache.get(1, &rect(0.0)), Some(true));
        assert_eq!(cache.get(2, &rect(0.0)), None);
        cache.reset_stats();
        assert_eq!(cache.stats(), CacheStats::default());
        assert_eq!(cache.len(), 1, "entries survive a counter reset");
        assert_eq!(cache.get(1, &rect(0.0)), Some(true));
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn clear_empties_the_cache_and_advances_the_epoch() {
        let cache = ResultCache::new(64);
        cache.insert(1, &rect(0.0), true);
        cache.insert(2, &rect(0.0), false);
        let before = cache.epoch();
        cache.clear();
        assert_eq!(cache.epoch(), before + 1);
        assert!(cache.is_empty(), "clear drops every entry");
        assert_eq!(cache.get(1, &rect(0.0)), None);
        // Counters survive: the miss above is counted on top of the two
        // insert-time probes the test never made (inserts don't probe).
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn stale_epoch_inserts_are_unreachable_after_clear() {
        let cache = ResultCache::new(64);
        let old_epoch = cache.epoch();
        cache.clear();
        // A batch that started before the clear races its insert in
        // afterwards, stamped with the epoch it captured at batch start.
        cache.insert_at(old_epoch, 1, &rect(0.0), true);
        assert_eq!(cache.get(1, &rect(0.0)), None, "stale answer never served");
        assert_eq!(cache.get_at(old_epoch, 1, &rect(0.0)), Some(true), "but it did land");
    }

    #[test]
    fn reinsert_updates_value_and_recency() {
        let cache = ResultCache::new(64);
        cache.insert(1, &rect(0.0), true);
        cache.insert(1, &rect(0.0), false);
        assert_eq!(cache.get(1, &rect(0.0)), Some(false));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_access_is_safe_and_consistent() {
        let cache = std::sync::Arc::new(ResultCache::new(256));
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let cache = std::sync::Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..500u32 {
                        let v = (t * 37 + i) % 64;
                        cache.insert(v, &rect(0.0), v % 2 == 0);
                        if let Some(ans) = cache.get(v, &rect(0.0)) {
                            assert_eq!(ans, v % 2 == 0, "value integrity under contention");
                        }
                    }
                });
            }
        });
        assert!(cache.len() <= 256);
    }
}
