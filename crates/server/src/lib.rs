//! # gsr-server: a multi-threaded TCP query service
//!
//! Serves `RangeReach` queries over a newline-delimited text protocol (see
//! [`proto`]) from an immutable, [`Arc`]-shared index — typically one
//! loaded from a `gsr-store` snapshot, so a service replica goes from
//! process start to serving without rebuilding anything.
//!
//! ## Architecture
//!
//! * One non-blocking **accept loop** plus a **fixed worker pool** of `N`
//!   connection handlers, all running as blocking tasks on
//!   `gsr_graph::par`'s scoped-thread pool — the same primitive the index
//!   builders parallelize with, so the service adds no new threading
//!   machinery. Accepted connections are handed to workers through a
//!   `Mutex<VecDeque>` + `Condvar` queue.
//! * Each connection is **pipelined**: every flush of consecutive `REACH`
//!   lines is evaluated as one batch through
//!   [`gsr_core::BatchExecutor::run_bounded`], under the server's
//!   per-request time budget and its [`CancelToken`]. Replies come back in
//!   request order, one line each.
//! * **Graceful shutdown**: cancelling the server's token (via
//!   [`QueryServer::cancel_token`], or a client's `SHUTDOWN` line) stops
//!   the accept loop, wakes idle workers, and lets in-flight connections
//!   close at their next poll tick. [`QueryServer::run`] then returns.
//! * An optional **sharded result cache** ([`ResultCache`], enabled via
//!   [`ServerConfig::cache_entries`]) memoizes `(vertex, rectangle)`
//!   answers across connections; batches probe it first and only the
//!   misses reach the index.
//! * `STATS` reports queries served, error replies, p50/p99/p999 request
//!   latency from a fixed-bucket histogram ([`ServerStats`], built on the
//!   workspace-shared [`gsr_core::hist`] module), and the cache's
//!   hit/miss/eviction counters. `RESET` zeroes those counters — and
//!   nothing else — so an external load driver can make each measurement
//!   step stand alone.
//!
//! Every failure a query can hit maps onto one `ERR <code> <msg>` line
//! mirroring the [`GsrError`] taxonomy; a malformed line never kills the
//! connection, and a panicking index implementation is fenced off by the
//! batch executor's per-query isolation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod proto;
mod stats;

pub use cache::{CacheStats, ResultCache};
pub use stats::{LatencyHistogram, ServerStats, StatsSnapshot};

use gsr_core::{BatchExecutor, BatchOptions, BatchQuery, CancelToken, GsrError, RangeReachIndex};
use proto::{error_reply, parse_line, Request, PROTOCOL_ERR};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How often blocked workers and connection reads wake up to poll the
/// cancellation token. Bounds shutdown latency, not correctness.
const POLL_TICK: Duration = Duration::from_millis(25);

/// Configuration of a [`QueryServer`].
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Connection-handler pool size; `0` means machine parallelism.
    pub threads: usize,
    /// Per-request time budget applied to each pipelined batch of `REACH`
    /// queries; `None` means unlimited. Exceeding it answers the remaining
    /// queries of the batch with `ERR 5`.
    pub budget: Option<Duration>,
    /// Total capacity of the sharded result cache ([`ResultCache`]);
    /// `0` disables caching. Cached answers are exact — the index is
    /// immutable — and only successful answers are ever cached.
    pub cache_entries: usize,
}

/// A bound TCP query service. Construct with [`QueryServer::bind`], then
/// call [`QueryServer::run`] to serve until shutdown.
pub struct QueryServer {
    listener: TcpListener,
    local_addr: SocketAddr,
    index: Arc<dyn RangeReachIndex>,
    config: ServerConfig,
    cancel: CancelToken,
    stats: Arc<ServerStats>,
    cache: Option<ResultCache>,
}

/// The connection hand-off queue between the accept loop and the workers.
#[derive(Default)]
struct ConnQueue {
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
}

impl QueryServer {
    /// Binds the service to `addr` (use port 0 to let the OS pick one; the
    /// chosen port is available via [`QueryServer::local_addr`]).
    pub fn bind(
        addr: impl ToSocketAddrs,
        index: Arc<dyn RangeReachIndex>,
        config: ServerConfig,
    ) -> Result<Self, GsrError> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| GsrError::Internal(format!("server bind: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| GsrError::Internal(format!("server local_addr: {e}")))?;
        let cache = match config.cache_entries {
            0 => None,
            n => Some(ResultCache::new(n)),
        };
        Ok(QueryServer {
            listener,
            local_addr,
            index,
            config,
            cancel: CancelToken::new(),
            stats: Arc::new(ServerStats::default()),
            cache,
        })
    }

    /// The bound address (resolves port 0 to the OS-assigned port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that stops the server when cancelled: the accept loop
    /// exits, idle workers wake and drain, open connections close at their
    /// next poll tick, and [`QueryServer::run`] returns.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// The live service counters (shared with the workers).
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// Serves until the cancellation token fires (externally or via a
    /// client's `SHUTDOWN`), then returns after a graceful drain.
    pub fn run(self) -> Result<(), GsrError> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| GsrError::Internal(format!("server set_nonblocking: {e}")))?;
        let workers = gsr_graph::par::effective_threads(self.config.threads);
        let conns = ConnQueue::default();

        // Task 0 is the accept loop; tasks 1..=workers are the fixed
        // connection-handler pool. All are blocking tasks on the same
        // scoped-thread pool the index builders use; requesting exactly
        // `workers + 1` threads gives every task its own OS thread.
        gsr_graph::par::map_indexed(workers + 1, workers + 1, |i| {
            if i == 0 {
                self.accept_loop(&conns);
            } else {
                self.worker_loop(&conns);
            }
        });
        Ok(())
    }

    fn accept_loop(&self, conns: &ConnQueue) {
        while !self.cancel.is_cancelled() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if let Ok(mut q) = conns.queue.lock() {
                        q.push_back(stream);
                        conns.ready.notify_one();
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_TICK);
                }
                Err(_) => {
                    // Transient accept failure (e.g. per-connection resource
                    // exhaustion): back off and keep serving.
                    std::thread::sleep(POLL_TICK);
                }
            }
        }
        // Wake every idle worker so the pool can drain and exit.
        conns.ready.notify_all();
    }

    fn worker_loop(&self, conns: &ConnQueue) {
        loop {
            let next = {
                let Ok(mut q) = conns.queue.lock() else { return };
                loop {
                    if let Some(stream) = q.pop_front() {
                        break Some(stream);
                    }
                    if self.cancel.is_cancelled() {
                        break None;
                    }
                    match conns.ready.wait_timeout(q, POLL_TICK) {
                        Ok((guard, _)) => q = guard,
                        Err(_) => return,
                    }
                }
            };
            match next {
                Some(stream) => self.handle_connection(stream),
                None => return,
            }
        }
    }

    /// Serves one connection until EOF, a fatal socket error, or shutdown.
    fn handle_connection(&self, mut stream: TcpStream) {
        // A finite read timeout turns the blocking read into a poll loop,
        // so shutdown is noticed within one tick even on idle connections.
        let _ = stream.set_read_timeout(Some(POLL_TICK));
        let _ = stream.set_nodelay(true);

        let mut pending: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            if self.cancel.is_cancelled() {
                return;
            }
            match stream.read(&mut chunk) {
                Ok(0) => {
                    // EOF. A trailing unterminated line is still served (the
                    // peer may have half-closed and be waiting for replies).
                    if !pending.is_empty() {
                        let tail = std::mem::take(&mut pending);
                        let (replies, _) = self.serve_lines(&tail);
                        let _ = stream.write_all(replies.as_bytes());
                    }
                    return;
                }
                Ok(n) => {
                    pending.extend_from_slice(&chunk[..n]);
                    let Some(last_nl) = pending.iter().rposition(|&b| b == b'\n') else {
                        continue;
                    };
                    let complete: Vec<u8> = pending.drain(..=last_nl).collect();
                    let (replies, shutdown) = self.serve_lines(&complete);
                    if stream.write_all(replies.as_bytes()).is_err() || shutdown {
                        return;
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(_) => return,
            }
        }
    }

    /// Serves a flush of complete request lines, returning the reply text
    /// (one line per request, in order) and whether `SHUTDOWN` was seen.
    ///
    /// Consecutive `REACH` lines form one batch through
    /// [`BatchExecutor::run_bounded`] — that is what makes pipelining pay:
    /// a client that writes 1000 queries before reading gets them evaluated
    /// as one bounded batch, not 1000 round trips.
    fn serve_lines(&self, bytes: &[u8]) -> (String, bool) {
        let text = String::from_utf8_lossy(bytes);
        let mut replies = String::new();
        let mut batch: Vec<BatchQuery> = Vec::new();
        let mut shutdown = false;

        for line in text.split('\n') {
            if shutdown {
                break;
            }
            match parse_line(line) {
                Ok(None) => {}
                Ok(Some(Request::Reach(v, r))) => batch.push((v, r)),
                other => {
                    self.flush_batch(&mut batch, &mut replies);
                    match other {
                        Ok(Some(Request::Stats)) => {
                            let mut snap = self.stats.snapshot();
                            snap.index_bytes = self.index.index_bytes() as u64;
                            if let Some(cache) = &self.cache {
                                snap.cache = cache.stats();
                            }
                            replies.push_str(&format!("STATS {snap}\n"));
                        }
                        Ok(Some(Request::Reset)) => {
                            self.stats.reset();
                            if let Some(cache) = &self.cache {
                                cache.reset_stats();
                            }
                            replies.push_str("OK reset\n");
                        }
                        Ok(Some(Request::Shutdown)) => {
                            replies.push_str("OK shutdown\n");
                            self.cancel.cancel();
                            shutdown = true;
                        }
                        Err(msg) => {
                            self.stats.record_protocol_error();
                            replies.push_str(&format!("ERR {PROTOCOL_ERR} {msg}\n"));
                        }
                        Ok(Some(Request::Reach(..))) | Ok(None) => {}
                    }
                }
            }
        }
        self.flush_batch(&mut batch, &mut replies);
        (replies, shutdown)
    }

    /// Evaluates the accumulated `REACH` batch and appends one reply line
    /// per query. Request latency is recorded per query as its batch's
    /// wall-clock time — under pipelining, that is the time from batch
    /// start to the reply being ready.
    ///
    /// With the result cache enabled, the batch is probed first and only
    /// the misses are evaluated; successful answers are inserted back.
    /// Errors, timeouts and cancellations are never cached, so degraded
    /// replies cannot be replayed once the condition clears.
    fn flush_batch(&self, batch: &mut Vec<BatchQuery>, replies: &mut String) {
        if batch.is_empty() {
            return;
        }
        let queries = std::mem::take(batch);
        let mut options = BatchOptions::unlimited().with_cancel(self.cancel.clone());
        if let Some(budget) = self.config.budget {
            options = options.with_budget(budget);
        }
        let started = Instant::now();
        let (answers, errors, timed_out, cancelled) = match &self.cache {
            None => {
                let o =
                    BatchExecutor::new(1).run_bounded(self.index.as_ref(), &queries, &options);
                (o.answers, o.errors, o.timed_out, o.cancelled)
            }
            Some(cache) => {
                let mut answers: Vec<Option<bool>> =
                    queries.iter().map(|(v, r)| cache.get(*v, r)).collect();
                let misses: Vec<usize> =
                    (0..queries.len()).filter(|&i| answers[i].is_none()).collect();
                let mut errors = Vec::new();
                let mut timed_out = false;
                let mut cancelled = false;
                if !misses.is_empty() {
                    let sub: Vec<BatchQuery> = misses.iter().map(|&i| queries[i]).collect();
                    let o = BatchExecutor::new(1).run_bounded(self.index.as_ref(), &sub, &options);
                    timed_out = o.timed_out;
                    cancelled = o.cancelled;
                    for (j, answer) in o.answers.into_iter().enumerate() {
                        let i = misses[j];
                        if let Some(hit) = answer {
                            let (v, r) = &queries[i];
                            cache.insert(*v, r, hit);
                        }
                        answers[i] = answer;
                    }
                    // Sub-batch error indexes map back through `misses`;
                    // `misses` is ascending, so order is preserved.
                    errors = o.errors.into_iter().map(|(j, e)| (misses[j], e)).collect();
                }
                (answers, errors, timed_out, cancelled)
            }
        };
        let elapsed_us = started.elapsed().as_micros().min(u64::MAX as u128) as u64;

        let budget_ms = self.config.budget.map_or(0, |b| b.as_millis().min(u64::MAX as u128) as u64);
        for (i, answer) in answers.iter().enumerate() {
            let reply = match answer {
                Some(true) => "TRUE".to_string(),
                Some(false) => "FALSE".to_string(),
                None => {
                    if let Some((_, e)) = errors.iter().find(|(j, _)| *j == i) {
                        error_reply(e)
                    } else if timed_out {
                        error_reply(&GsrError::Timeout { budget_ms })
                    } else if cancelled {
                        error_reply(&GsrError::Cancelled)
                    } else {
                        error_reply(&GsrError::Internal("query produced no answer".into()))
                    }
                }
            };
            self.stats.record_query(elapsed_us, reply.starts_with("ERR"));
            replies.push_str(&reply);
            replies.push('\n');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsr_core::methods::ThreeDReach;
    use gsr_core::{paper_example, SccSpatialPolicy};

    fn test_server(config: ServerConfig) -> QueryServer {
        let prep = paper_example::prepared();
        let index: Arc<dyn RangeReachIndex> =
            Arc::new(ThreeDReach::build(&prep, SccSpatialPolicy::Replicate));
        QueryServer::bind(("127.0.0.1", 0), index, config).unwrap()
    }

    #[test]
    fn serve_lines_answers_in_request_order() {
        let server = test_server(ServerConfig::default());
        let r = paper_example::query_region();
        let input = format!(
            "REACH {} {} {} {} {}\nREACH {} {} {} {} {}\nSTATS\n",
            paper_example::A, r.min_x, r.min_y, r.max_x, r.max_y,
            paper_example::C, r.min_x, r.min_y, r.max_x, r.max_y,
        );
        let (replies, shutdown) = server.serve_lines(input.as_bytes());
        let lines: Vec<&str> = replies.lines().collect();
        assert_eq!(lines[0], "TRUE");
        assert_eq!(lines[1], "FALSE");
        assert!(lines[2].starts_with("STATS queries=2 errors=0"), "{}", lines[2]);
        assert!(
            lines[2].contains("index_bytes=") && !lines[2].contains("index_bytes=0 "),
            "STATS must report the served index's heap footprint: {}",
            lines[2]
        );
        assert!(!shutdown);
    }

    #[test]
    fn serve_lines_maps_all_error_shapes() {
        let server = test_server(ServerConfig::default());
        let input = "REACH 9999 0 0 1 1\nREACH 0 5 5 1 1\nREACH nope\nFETCH\n";
        let (replies, _) = server.serve_lines(input.as_bytes());
        let lines: Vec<&str> = replies.lines().collect();
        assert!(lines[0].starts_with("ERR 4 invalid query vertex"), "{}", lines[0]);
        assert!(lines[1].starts_with("ERR 4 invalid query rectangle"), "{}", lines[1]);
        assert!(lines[2].starts_with("ERR 2 "), "{}", lines[2]);
        assert!(lines[3].starts_with("ERR 2 unknown command"), "{}", lines[3]);
    }

    #[test]
    fn zero_budget_times_out_with_err_5() {
        let server = test_server(ServerConfig {
            threads: 1,
            budget: Some(Duration::ZERO),
            ..ServerConfig::default()
        });
        let (replies, _) = server.serve_lines(b"REACH 0 0 0 1 1\n");
        assert!(replies.starts_with("ERR 5 time budget of 0 ms exceeded"), "{replies}");
    }

    #[test]
    fn cache_repeats_answers_and_counts_hits() {
        let server =
            test_server(ServerConfig { cache_entries: 64, ..ServerConfig::default() });
        let r = paper_example::query_region();
        let line = format!(
            "REACH {} {} {} {} {}\n",
            paper_example::A, r.min_x, r.min_y, r.max_x, r.max_y,
        );
        let (first, _) = server.serve_lines(line.as_bytes());
        assert_eq!(first, "TRUE\n");
        let (second, _) = server.serve_lines(line.as_bytes());
        assert_eq!(second, first, "cached reply must match the computed one");
        let (stats, _) = server.serve_lines(b"STATS\n");
        assert!(stats.contains("cache_hits=1"), "{stats}");
        assert!(stats.contains("cache_misses=1"), "{stats}");
        assert!(stats.contains("cache_evictions=0"), "{stats}");
    }

    #[test]
    fn cache_preserves_order_and_does_not_cache_errors() {
        let server =
            test_server(ServerConfig { cache_entries: 64, ..ServerConfig::default() });
        let r = paper_example::query_region();
        let reach = |v: u32| format!("REACH {v} {} {} {} {}\n", r.min_x, r.min_y, r.max_x, r.max_y);
        // A mixed pipelined batch: good, invalid, good.
        let input = format!("{}REACH 9999 0 0 1 1\n{}", reach(paper_example::A), reach(paper_example::C));
        let (replies, _) = server.serve_lines(input.as_bytes());
        let lines: Vec<&str> = replies.lines().collect();
        assert_eq!(lines[0], "TRUE");
        assert!(lines[1].starts_with("ERR 4 invalid query vertex"), "{}", lines[1]);
        assert_eq!(lines[2], "FALSE");
        // Replaying the invalid query still fails (errors are not cached)
        // and the good queries now hit.
        let (again, _) = server.serve_lines(input.as_bytes());
        assert_eq!(again, replies);
        let (stats, _) = server.serve_lines(b"STATS\n");
        assert!(stats.contains("cache_hits=2"), "{stats}");
        assert!(stats.contains("cache_misses=4"), "{stats}");
    }

    #[test]
    fn reset_zeroes_counters_but_not_the_cache_entries() {
        let server =
            test_server(ServerConfig { cache_entries: 64, ..ServerConfig::default() });
        let r = paper_example::query_region();
        let line = format!(
            "REACH {} {} {} {} {}\n",
            paper_example::A, r.min_x, r.min_y, r.max_x, r.max_y,
        );
        let (_, _) = server.serve_lines(line.as_bytes());
        let (reply, shutdown) = server.serve_lines(b"RESET\n");
        assert_eq!(reply, "OK reset\n");
        assert!(!shutdown);
        let (stats, _) = server.serve_lines(b"STATS\n");
        assert!(stats.contains("queries=0 errors=0 p50_us=0 p99_us=0 p999_us=0"), "{stats}");
        // Cached entries survive the reset: replaying the query is a hit.
        let (again, _) = server.serve_lines(line.as_bytes());
        assert_eq!(again, "TRUE\n");
        let (stats, _) = server.serve_lines(b"STATS\n");
        assert!(stats.contains("cache_hits=1"), "{stats}");
        assert!(stats.contains("cache_misses=0"), "{stats}");
    }

    #[test]
    fn shutdown_line_cancels_the_server() {
        let server = test_server(ServerConfig::default());
        let token = server.cancel_token();
        let (replies, shutdown) = server.serve_lines(b"SHUTDOWN\nREACH 0 0 0 1 1\n");
        assert_eq!(replies, "OK shutdown\n", "requests after SHUTDOWN are not served");
        assert!(shutdown);
        assert!(token.is_cancelled());
    }
}
