//! # gsr-server: a multi-threaded TCP query service
//!
//! Serves `RangeReach` queries over a newline-delimited text protocol (see
//! [`proto`]) from an immutable, [`Arc`]-shared index — typically one
//! loaded from a `gsr-store` snapshot, so a service replica goes from
//! process start to serving without rebuilding anything.
//!
//! ## Architecture
//!
//! * One non-blocking **accept loop** plus a **fixed worker pool** of `N`
//!   connection handlers, all running as blocking tasks on
//!   `gsr_graph::par`'s scoped-thread pool — the same primitive the index
//!   builders parallelize with, so the service adds no new threading
//!   machinery. Accepted connections are handed to workers through a
//!   `Mutex<VecDeque>` + `Condvar` queue.
//! * Each connection is **pipelined**: every flush of consecutive `REACH`
//!   lines is evaluated as one batch through
//!   [`gsr_core::BatchExecutor::run_bounded`], under the server's
//!   per-request time budget and its [`CancelToken`]. Replies come back in
//!   request order, one line each.
//! * **Graceful shutdown**: cancelling the server's token (via
//!   [`QueryServer::cancel_token`], or a client's `SHUTDOWN` line) stops
//!   the accept loop, wakes idle workers, and lets in-flight connections
//!   close at their next poll tick. [`QueryServer::run`] then returns.
//! * An optional **sharded result cache** ([`ResultCache`], enabled via
//!   [`ServerConfig::cache_entries`]) memoizes `(vertex, rectangle)`
//!   answers across connections; batches probe it first and only the
//!   misses reach the index.
//! * A **dataset registry** ([`QueryServer::bind_many`]): one process can
//!   serve several named indexes; a per-connection `USE <dataset>` line
//!   selects which one subsequent requests address. Cache entries are
//!   keyed to globally unique per-dataset epochs, so answers from
//!   different datasets can never collide in the shared cache.
//! * **Sharded serving**: when the served index is a
//!   [`gsr_core::ShardedIndex`] (loaded from a sharded snapshot directory
//!   via [`gsr_store::load_served_index`]), each query fans out only to
//!   the shards whose MBR intersects its rectangle and short-circuits on
//!   the first `TRUE`; `STATS` additionally reports `shards=`, `probes=`,
//!   `pruned=` and a per-shard `probe_p99_us=` list.
//! * `STATS` reports queries served, error replies, p50/p99/p999 request
//!   latency from a fixed-bucket histogram ([`ServerStats`], built on the
//!   workspace-shared [`gsr_core::hist`] module), the cache's
//!   hit/miss/eviction counters, and the overload tallies
//!   (`shed`/`rejected`/`accept_errors`/`reloads`). `RESET` zeroes those
//!   counters — and nothing else — so an external load driver can make
//!   each measurement step stand alone.
//!
//! ## Overload and failure hardening
//!
//! * **Admission control**: the accept→worker queue is bounded
//!   ([`ServerConfig::max_pending`]) and so is the number of admitted
//!   connections ([`ServerConfig::max_conns`]). A connection past either
//!   limit is *shed*: one best-effort `ERR 7 busy retry_ms=<hint>` line,
//!   then close — never an unbounded queue.
//! * **Lifecycle limits**: request lines are capped at
//!   [`ServerConfig::max_line`] bytes (oversize → `ERR 2 line too long` +
//!   close, which also defeats slow-loris writers), pipelined batches are
//!   split at [`ServerConfig::max_batch`] queries, silent connections are
//!   reaped after [`ServerConfig::idle_timeout`], and replies carry a
//!   write deadline ([`ServerConfig::write_timeout`]) so one stalled
//!   reader cannot wedge a worker. Every limit surfaces as a typed
//!   protocol error; none panics or hangs.
//! * **Hot reload**: `RELOAD <path>` loads and CRC-validates a snapshot on
//!   a dedicated thread (off the worker pool, panic-fenced), then swaps
//!   the served index under a write lock. In-flight batches pin the index
//!   `Arc` (and the cache epoch) at batch start and finish on the old
//!   index; the result cache is cleared atomically with the swap. Any
//!   load failure leaves the old index serving and replies a typed `ERR`.
//! * The accept loop absorbs transient `accept()` failures (EMFILE
//!   storms) with capped exponential backoff instead of hot-spinning,
//!   counting them as `accept_errors`.
//!
//! Every failure a query can hit maps onto one `ERR <code> <msg>` line
//! mirroring the [`GsrError`] taxonomy; a malformed line never kills the
//! connection, and a panicking index implementation is fenced off by the
//! batch executor's per-query isolation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod proto;
mod stats;

pub use cache::{CacheStats, ResultCache};
pub use stats::{LatencyHistogram, ServerStats, StatsSnapshot};

use gsr_core::{BatchExecutor, BatchOptions, BatchQuery, CancelToken, GsrError, RangeReachIndex};
use proto::{busy_reply, error_reply, parse_line, Request, BUSY_ERR, PROTOCOL_ERR};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// How often blocked workers and connection reads wake up to poll the
/// cancellation token. Bounds shutdown latency, not correctness.
const POLL_TICK: Duration = Duration::from_millis(25);

/// Ceiling of the accept loop's exponential backoff on repeated
/// `accept()` failures. Also bounds shutdown latency during such a storm.
const ACCEPT_BACKOFF_CAP: Duration = Duration::from_secs(1);

/// The `retry_ms` hint sent with `ERR 7 busy` shed replies. A courtesy
/// backoff suggestion, not a promise of capacity.
const BUSY_RETRY_MS: u64 = 100;

/// Configuration of a [`QueryServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connection-handler pool size; `0` means machine parallelism.
    pub threads: usize,
    /// Per-request time budget applied to each pipelined batch of `REACH`
    /// queries; `None` means unlimited. Exceeding it answers the remaining
    /// queries of the batch with `ERR 5`.
    pub budget: Option<Duration>,
    /// Total capacity of the sharded result cache ([`ResultCache`]);
    /// `0` disables caching. Cached answers are exact — they are keyed to
    /// the served index's epoch — and only successful answers are cached.
    pub cache_entries: usize,
    /// Bound on the accept→worker hand-off queue; a connection arriving
    /// with the queue full is shed (`ERR 7 busy` + close) and counted as
    /// `shed`. `0` means unbounded (the pre-hardening behavior).
    pub max_pending: usize,
    /// Bound on admitted connections (queued plus being served); beyond
    /// it new connections are refused (`ERR 7 busy` + close) and counted
    /// as `rejected`. `0` means unlimited.
    pub max_conns: usize,
    /// Maximum request-line length in bytes. An oversize line — complete,
    /// or still being dribbled in by a slow-loris writer — answers
    /// `ERR 2 line too long` and closes the connection. `0` = unlimited.
    pub max_line: usize,
    /// Maximum pipelined `REACH` queries evaluated as one batch; longer
    /// pipelines are split at the cap (answers unchanged, not an error),
    /// bounding per-batch memory and budget-check granularity. `0` =
    /// unlimited.
    pub max_batch: usize,
    /// Reap connections that have been silent this long with
    /// `ERR 7 idle timeout` + close; `None` = never reap.
    pub idle_timeout: Option<Duration>,
    /// Write deadline for reply flushes, so one stalled reader cannot
    /// wedge a worker forever; `None` = unlimited.
    pub write_timeout: Option<Duration>,
    /// Skip the eager CRC pass when `RELOAD` loads a v3 snapshot
    /// ([`gsr_store::LoadOptions::trust`]). Structural validation always
    /// runs; only enable this for snapshots this deployment wrote itself.
    pub trust_snapshot: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 0,
            budget: None,
            cache_entries: 0,
            max_pending: 1024,
            max_conns: 0,
            max_line: 64 * 1024,
            max_batch: 4096,
            idle_timeout: None,
            write_timeout: Some(Duration::from_secs(10)),
            trust_snapshot: false,
        }
    }
}

/// `0`-means-unlimited limits, normalized for comparisons.
fn cap_or_max(cap: usize) -> usize {
    if cap == 0 {
        usize::MAX
    } else {
        cap
    }
}

/// The reply for a request line over [`ServerConfig::max_line`].
fn line_too_long(max: usize) -> String {
    format!("ERR {PROTOCOL_ERR} line too long (max {max} bytes)\n")
}

/// What a connection should do after serving a flush of request lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LineAction {
    /// Keep reading requests.
    Continue,
    /// Close this connection (a lifecycle limit fired); the server stays
    /// up.
    Close,
    /// `SHUTDOWN` was requested: the whole server stops.
    Shutdown,
}

/// One named dataset registered in the server: the served index and its
/// cache epoch, swapped together by `RELOAD` so a batch can never pair a
/// new index with an old epoch or vice versa.
struct DatasetSlot {
    name: String,
    /// `(index, cache epoch)` behind a lock only so `RELOAD` can swap the
    /// pair; the read path clones the `Arc` once per batch.
    index: RwLock<(Arc<dyn RangeReachIndex>, u64)>,
}

/// Per-connection protocol state: which registered dataset this
/// connection's `REACH`/`STATS`/`RELOAD` lines address (selected with
/// `USE <dataset>`; every connection starts on the first registered
/// dataset).
#[derive(Debug, Clone, Copy, Default)]
struct ConnState {
    dataset: usize,
}

/// A bound TCP query service. Construct with [`QueryServer::bind`] (one
/// index) or [`QueryServer::bind_many`] (a named registry), then call
/// [`QueryServer::run`] to serve until shutdown.
pub struct QueryServer {
    listener: TcpListener,
    local_addr: SocketAddr,
    /// The dataset registry, fixed at bind time (`USE` selects, `RELOAD`
    /// swaps contents; entries are never added or removed while serving).
    datasets: Vec<DatasetSlot>,
    /// Allocator of globally unique cache epochs: every `(dataset,
    /// index-version)` pair ever served gets its own epoch, so cached
    /// answers from different datasets (or superseded indexes) can never
    /// collide in the shared [`ResultCache`].
    epoch_alloc: AtomicU64,
    config: ServerConfig,
    cancel: CancelToken,
    stats: Arc<ServerStats>,
    cache: Option<ResultCache>,
    /// Admitted connections: incremented at admission, decremented after
    /// the connection's stream has been dropped (FIN before the slot
    /// frees, so `max_conns` never over-admits).
    live_conns: AtomicUsize,
}

/// The connection hand-off queue between the accept loop and the workers.
#[derive(Default)]
struct ConnQueue {
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
}

/// Frees one `live_conns` slot on drop — declared so it drops *after* the
/// connection's stream, keeping the admission count honest even if a
/// handler returns early.
struct LiveGuard<'a>(&'a AtomicUsize);

impl Drop for LiveGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

impl QueryServer {
    /// Binds the service to `addr` (use port 0 to let the OS pick one; the
    /// chosen port is available via [`QueryServer::local_addr`]), serving
    /// one index registered under the dataset name `"default"`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        index: Arc<dyn RangeReachIndex>,
        config: ServerConfig,
    ) -> Result<Self, GsrError> {
        Self::bind_many(addr, vec![("default".to_string(), index)], config)
    }

    /// Binds the service with a registry of named indexes. Connections
    /// start on the first entry and switch with `USE <name>`; `RELOAD`
    /// swaps the selected dataset's index in place. Names must be
    /// non-empty and unique.
    pub fn bind_many(
        addr: impl ToSocketAddrs,
        indexes: Vec<(String, Arc<dyn RangeReachIndex>)>,
        config: ServerConfig,
    ) -> Result<Self, GsrError> {
        if indexes.is_empty() {
            return Err(GsrError::Internal("server bind: no datasets to serve".into()));
        }
        for (i, (name, _)) in indexes.iter().enumerate() {
            if name.is_empty() {
                return Err(GsrError::Internal("server bind: empty dataset name".into()));
            }
            if indexes.iter().take(i).any(|(other, _)| other == name) {
                return Err(GsrError::Internal(format!(
                    "server bind: duplicate dataset name {name:?}"
                )));
            }
        }
        let listener = TcpListener::bind(addr)
            .map_err(|e| GsrError::Internal(format!("server bind: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| GsrError::Internal(format!("server local_addr: {e}")))?;
        let cache = match config.cache_entries {
            0 => None,
            n => Some(ResultCache::new(n)),
        };
        // Epochs 0..n seed the datasets; the allocator continues from n so
        // every reload (of any dataset) gets a fresh, never-reused epoch.
        let epoch_alloc = AtomicU64::new(indexes.len() as u64);
        let datasets = indexes
            .into_iter()
            .enumerate()
            .map(|(i, (name, index))| DatasetSlot {
                name,
                index: RwLock::new((index, i as u64)),
            })
            .collect();
        Ok(QueryServer {
            listener,
            local_addr,
            datasets,
            epoch_alloc,
            config,
            cancel: CancelToken::new(),
            stats: Arc::new(ServerStats::default()),
            cache,
            live_conns: AtomicUsize::new(0),
        })
    }

    /// The currently served index of a dataset (a cheap `Arc` clone).
    fn current_index(&self, dataset: usize) -> Arc<dyn RangeReachIndex> {
        self.pinned(dataset).0
    }

    /// Pins a dataset's served index and its cache epoch as one consistent
    /// pair. `reload` swaps both under the write lock, so a batch can
    /// never see a new index with an old epoch or vice versa — and because
    /// epochs are allocated globally (never reused across datasets or
    /// reloads), a cache entry keyed to one pair can never answer for
    /// another.
    fn pinned(&self, dataset: usize) -> (Arc<dyn RangeReachIndex>, u64) {
        let g = match self.datasets[dataset].index.read() {
            Ok(g) => g,
            // A poisoned lock means a panic while swapping; the pair inside
            // is still whole, so keep serving it.
            Err(e) => e.into_inner(),
        };
        (Arc::clone(&g.0), g.1)
    }

    /// The bound address (resolves port 0 to the OS-assigned port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that stops the server when cancelled: the accept loop
    /// exits, idle workers wake and drain, open connections close at their
    /// next poll tick, and [`QueryServer::run`] returns.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// The live service counters (shared with the workers).
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// Serves until the cancellation token fires (externally or via a
    /// client's `SHUTDOWN`), then returns after a graceful drain.
    pub fn run(self) -> Result<(), GsrError> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| GsrError::Internal(format!("server set_nonblocking: {e}")))?;
        let workers = gsr_graph::par::effective_threads(self.config.threads);
        let conns = ConnQueue::default();

        // Task 0 is the accept loop; tasks 1..=workers are the fixed
        // connection-handler pool. All are blocking tasks on the same
        // scoped-thread pool the index builders use; requesting exactly
        // `workers + 1` threads gives every task its own OS thread.
        gsr_graph::par::map_indexed(workers + 1, workers + 1, |i| {
            if i == 0 {
                self.accept_loop(&conns);
            } else {
                self.worker_loop(&conns);
            }
        });
        Ok(())
    }

    fn accept_loop(&self, conns: &ConnQueue) {
        let mut backoff = POLL_TICK;
        while !self.cancel.is_cancelled() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    backoff = POLL_TICK;
                    self.admit(stream, conns);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    backoff = POLL_TICK;
                    std::thread::sleep(POLL_TICK);
                }
                Err(_) => {
                    // Transient accept failure (EMFILE storms, aborted
                    // handshakes): count it and back off with capped
                    // exponential sleep instead of hot-spinning, so a
                    // persistent storm costs a bounded trickle of wakeups.
                    self.stats.record_accept_error();
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(ACCEPT_BACKOFF_CAP);
                }
            }
        }
        // Wake every idle worker so the pool can drain and exit.
        conns.ready.notify_all();
    }

    /// Admission control: queue the connection for a worker, or shed it
    /// with one `ERR 7 busy` line and a close. Shedding at the door keeps
    /// both the hand-off queue and total connection state bounded no
    /// matter how fast clients arrive.
    fn admit(&self, stream: TcpStream, conns: &ConnQueue) {
        let max_conns = self.config.max_conns;
        if max_conns != 0 && self.live_conns.load(Ordering::Acquire) >= max_conns {
            self.stats.record_rejected();
            Self::shed(stream);
            return;
        }
        let Ok(mut q) = conns.queue.lock() else { return };
        if self.config.max_pending != 0 && q.len() >= self.config.max_pending {
            drop(q);
            self.stats.record_shed();
            Self::shed(stream);
            return;
        }
        self.live_conns.fetch_add(1, Ordering::AcqRel);
        q.push_back(stream);
        conns.ready.notify_one();
    }

    /// Refuses a connection: one busy line under a short write deadline,
    /// then close (on drop). Best-effort — the close is the mechanism,
    /// the hint is a courtesy.
    fn shed(mut stream: TcpStream) {
        let _ = stream.set_write_timeout(Some(POLL_TICK));
        let _ = stream.write_all(busy_reply(BUSY_RETRY_MS).as_bytes());
    }

    fn worker_loop(&self, conns: &ConnQueue) {
        loop {
            let next = {
                let Ok(mut q) = conns.queue.lock() else { return };
                loop {
                    if let Some(stream) = q.pop_front() {
                        break Some(stream);
                    }
                    if self.cancel.is_cancelled() {
                        break None;
                    }
                    match conns.ready.wait_timeout(q, POLL_TICK) {
                        Ok((guard, _)) => q = guard,
                        Err(_) => return,
                    }
                }
            };
            match next {
                Some(stream) => {
                    // Guard first, stream into the handler second: the
                    // stream (and its FIN) drops before the slot frees.
                    let _live = LiveGuard(&self.live_conns);
                    self.handle_connection(stream);
                }
                None => return,
            }
        }
    }

    /// Serves one connection until EOF, a fatal socket error, a lifecycle
    /// limit (oversize line, idle timeout), or shutdown.
    fn handle_connection(&self, mut stream: TcpStream) {
        // A finite read timeout turns the blocking read into a poll loop,
        // so shutdown is noticed within one tick even on idle connections.
        let _ = stream.set_read_timeout(Some(POLL_TICK));
        // A write deadline keeps one stalled reader from wedging this
        // worker: a reply flush that cannot make progress errors out and
        // the connection closes.
        let _ = stream.set_write_timeout(self.config.write_timeout);
        let _ = stream.set_nodelay(true);

        let line_cap = cap_or_max(self.config.max_line);
        let mut last_activity = Instant::now();
        let mut pending: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 4096];
        let mut conn = ConnState::default();
        loop {
            if self.cancel.is_cancelled() {
                return;
            }
            match stream.read(&mut chunk) {
                Ok(0) => {
                    // EOF. A trailing unterminated line is still served (the
                    // peer may have half-closed and be waiting for replies).
                    if !pending.is_empty() {
                        let tail = std::mem::take(&mut pending);
                        if tail.len() > line_cap {
                            self.stats.record_protocol_error();
                            let _ = stream
                                .write_all(line_too_long(self.config.max_line).as_bytes());
                            return;
                        }
                        let (replies, _) = self.serve_lines_conn(&tail, &mut conn);
                        let _ = stream.write_all(replies.as_bytes());
                    }
                    return;
                }
                Ok(n) => {
                    last_activity = Instant::now();
                    pending.extend_from_slice(&chunk[..n]);
                    if let Some(last_nl) = pending.iter().rposition(|&b| b == b'\n') {
                        let complete: Vec<u8> = pending.drain(..=last_nl).collect();
                        let (replies, action) = self.serve_lines_conn(&complete, &mut conn);
                        if stream.write_all(replies.as_bytes()).is_err()
                            || action != LineAction::Continue
                        {
                            return;
                        }
                    }
                    if pending.len() > line_cap {
                        // The line still being assembled is already over
                        // the cap — a slow-loris writer never gets to
                        // finish it, and buffered bytes stay bounded.
                        self.stats.record_protocol_error();
                        let _ =
                            stream.write_all(line_too_long(self.config.max_line).as_bytes());
                        return;
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if let Some(idle) = self.config.idle_timeout {
                        if last_activity.elapsed() >= idle {
                            // Reap the silent connection; the reply names
                            // the reason so a live-but-lazy client can tell
                            // this from a crash.
                            self.stats.record_protocol_error();
                            let reply = format!(
                                "ERR {BUSY_ERR} idle timeout after {} ms\n",
                                idle.as_millis()
                            );
                            let _ = stream.write_all(reply.as_bytes());
                            return;
                        }
                    }
                    continue;
                }
                Err(_) => return,
            }
        }
    }

    /// Serves a flush of complete request lines, returning the reply text
    /// (one line per request, in order) and what the connection should do
    /// next.
    ///
    /// Consecutive `REACH` lines form one batch through
    /// [`BatchExecutor::run_bounded`] — that is what makes pipelining pay:
    /// a client that writes 1000 queries before reading gets them evaluated
    /// as one bounded batch, not 1000 round trips. Batches are split at
    /// [`ServerConfig::max_batch`] queries so a pathological pipeline
    /// cannot grow one batch without bound.
    /// Test-only convenience: serve one flush with fresh connection state.
    #[cfg(test)]
    fn serve_lines(&self, bytes: &[u8]) -> (String, LineAction) {
        self.serve_lines_conn(bytes, &mut ConnState::default())
    }

    /// [`QueryServer::serve_lines`] with explicit per-connection state:
    /// `USE` switches `conn.dataset`, and every other verb addresses the
    /// dataset the connection currently has selected.
    fn serve_lines_conn(&self, bytes: &[u8], conn: &mut ConnState) -> (String, LineAction) {
        let text = String::from_utf8_lossy(bytes);
        let mut replies = String::new();
        let mut batch: Vec<BatchQuery> = Vec::new();
        let mut action = LineAction::Continue;
        let line_cap = cap_or_max(self.config.max_line);
        let batch_cap = cap_or_max(self.config.max_batch);

        for line in text.split('\n') {
            if action != LineAction::Continue {
                break;
            }
            if line.len() > line_cap {
                // Flush first so replies stay in request order, then
                // answer the oversize line and drop the connection.
                self.flush_batch(conn.dataset, &mut batch, &mut replies);
                self.stats.record_protocol_error();
                replies.push_str(&line_too_long(self.config.max_line));
                action = LineAction::Close;
                break;
            }
            match parse_line(line) {
                Ok(None) => {}
                Ok(Some(Request::Reach(v, r))) => {
                    batch.push((v, r));
                    if batch.len() >= batch_cap {
                        self.flush_batch(conn.dataset, &mut batch, &mut replies);
                    }
                }
                other => {
                    // Every non-REACH verb flushes first, so a pipelined
                    // batch always runs against the dataset that was
                    // selected when its queries arrived.
                    self.flush_batch(conn.dataset, &mut batch, &mut replies);
                    match other {
                        Ok(Some(Request::Use(name))) => {
                            match self.datasets.iter().position(|d| d.name == name) {
                                Some(i) => {
                                    conn.dataset = i;
                                    replies.push_str(&format!("OK use {name}\n"));
                                }
                                None => {
                                    self.stats.record_protocol_error();
                                    let known: Vec<&str> =
                                        self.datasets.iter().map(|d| d.name.as_str()).collect();
                                    replies.push_str(&format!(
                                        "ERR {PROTOCOL_ERR} unknown dataset {name:?} (have: {})\n",
                                        known.join(", ")
                                    ));
                                }
                            }
                        }
                        Ok(Some(Request::Stats)) => {
                            let index = self.current_index(conn.dataset);
                            let mut snap = self.stats.snapshot();
                            snap.index_bytes = index.index_bytes() as u64;
                            snap.live = self.live_conns.load(Ordering::Acquire) as u64;
                            if let Some(cache) = &self.cache {
                                snap.cache = cache.stats();
                            }
                            // Routing counters of a sharded router, plus a
                            // per-shard probe-latency tail appended after
                            // the fixed fields (absent for plain indexes).
                            let mut extra = String::new();
                            if let Some(s) = index.shard_stats() {
                                snap.shards = s.shards;
                                snap.probes = s.probes;
                                snap.pruned = s.pruned;
                                let p99: Vec<String> =
                                    s.probe_p99_us.iter().map(u64::to_string).collect();
                                extra = format!(" probe_p99_us={}", p99.join(","));
                            }
                            replies.push_str(&format!("STATS {snap}{extra}\n"));
                        }
                        Ok(Some(Request::Reset)) => {
                            self.stats.reset();
                            if let Some(cache) = &self.cache {
                                cache.reset_stats();
                            }
                            for i in 0..self.datasets.len() {
                                self.current_index(i).reset_shard_stats();
                            }
                            replies.push_str("OK reset\n");
                        }
                        Ok(Some(Request::Reload(path))) => {
                            match self.reload(conn.dataset, &path) {
                                Ok((index_bytes, load_ms)) => {
                                    replies.push_str(&format!(
                                        "OK reload index_bytes={index_bytes} load_ms={load_ms}\n"
                                    ));
                                }
                                Err(e) => {
                                    // The old index keeps serving; the client
                                    // learns why the swap did not happen.
                                    self.stats.record_protocol_error();
                                    replies.push_str(&error_reply(&e));
                                    replies.push('\n');
                                }
                            }
                        }
                        Ok(Some(Request::Shutdown)) => {
                            replies.push_str("OK shutdown\n");
                            self.cancel.cancel();
                            action = LineAction::Shutdown;
                        }
                        Err(msg) => {
                            self.stats.record_protocol_error();
                            replies.push_str(&format!("ERR {PROTOCOL_ERR} {msg}\n"));
                        }
                        Ok(Some(Request::Reach(..))) | Ok(None) => {}
                    }
                }
            }
        }
        self.flush_batch(conn.dataset, &mut batch, &mut replies);
        (replies, action)
    }

    /// Handles `RELOAD <path>` for the connection's selected dataset:
    /// loads and validates the snapshot on a dedicated thread (off the
    /// worker pool, so a deserializer panic is fenced), then swaps the
    /// dataset's `(index, epoch)` pair — with a freshly allocated,
    /// never-reused epoch — and clears the result cache under the
    /// dataset's write lock. A directory path loads as a **sharded
    /// snapshot set** ([`gsr_store::load_served_index`]), so one `RELOAD`
    /// swaps a whole shard set atomically under one epoch. In-flight
    /// batches pinned the old pair and finish on the old index; new
    /// batches see the new pair. On any failure the old index keeps
    /// serving. Returns the new index's heap footprint and the wall-clock
    /// load time (which, with the v3 mmap path, is the restart cost a
    /// replica would pay).
    fn reload(&self, dataset: usize, path: &str) -> Result<(u64, u64), GsrError> {
        let owned = path.to_string();
        let trust = self.config.trust_snapshot;
        let started = Instant::now();
        let (fresh, info) = std::thread::Builder::new()
            .name("gsr-reload".into())
            .spawn(move || {
                gsr_store::load_served_index(&owned, gsr_store::LoadOptions { trust })
            })
            .map_err(|e| GsrError::Internal(format!("reload: spawn loader: {e}")))?
            .join()
            .map_err(|_| GsrError::Internal("reload: snapshot loader panicked".into()))??;
        let load_ms = started.elapsed().as_millis().min(u64::MAX as u128) as u64;
        let index_bytes = fresh.index_bytes() as u64;
        let epoch = self.epoch_alloc.fetch_add(1, Ordering::Relaxed);
        {
            let mut g = match self.datasets[dataset].index.write() {
                Ok(g) => g,
                Err(e) => e.into_inner(),
            };
            *g = (fresh, epoch);
            if let Some(cache) = &self.cache {
                // Old entries are unreachable already (their epoch is
                // retired); dropping them now just frees the memory.
                cache.clear();
            }
        }
        self.stats.record_reload();
        self.stats.record_load(load_ms, info.format);
        Ok((index_bytes, load_ms))
    }

    /// Evaluates the accumulated `REACH` batch and appends one reply line
    /// per query. Request latency is recorded per query as its batch's
    /// wall-clock time — under pipelining, that is the time from batch
    /// start to the reply being ready.
    ///
    /// With the result cache enabled, the batch is probed first and only
    /// the misses are evaluated; successful answers are inserted back.
    /// Errors, timeouts and cancellations are never cached, so degraded
    /// replies cannot be replayed once the condition clears.
    fn flush_batch(&self, dataset: usize, batch: &mut Vec<BatchQuery>, replies: &mut String) {
        if batch.is_empty() {
            return;
        }
        let queries = std::mem::take(batch);
        // Pin the dataset's index and cache epoch as one pair for the
        // whole batch: a concurrent RELOAD redirects *new* batches while
        // this one finishes on the index it started with, and its cache
        // inserts stay keyed to that index's epoch (unreachable after a
        // swap). Epochs are globally unique across datasets, so a batch
        // for one dataset can never hit another's cached answers.
        let (index, epoch) = self.pinned(dataset);
        let mut options = BatchOptions::unlimited().with_cancel(self.cancel.clone());
        if let Some(budget) = self.config.budget {
            options = options.with_budget(budget);
        }
        let started = Instant::now();
        let (answers, errors, timed_out, cancelled) = match &self.cache {
            None => {
                let o = BatchExecutor::new(1).run_bounded(index.as_ref(), &queries, &options);
                (o.answers, o.errors, o.timed_out, o.cancelled)
            }
            Some(cache) => {
                let mut answers: Vec<Option<bool>> =
                    queries.iter().map(|(v, r)| cache.get_at(epoch, *v, r)).collect();
                let misses: Vec<usize> =
                    (0..queries.len()).filter(|&i| answers[i].is_none()).collect();
                let mut errors = Vec::new();
                let mut timed_out = false;
                let mut cancelled = false;
                if !misses.is_empty() {
                    let sub: Vec<BatchQuery> = misses.iter().map(|&i| queries[i]).collect();
                    let o = BatchExecutor::new(1).run_bounded(index.as_ref(), &sub, &options);
                    timed_out = o.timed_out;
                    cancelled = o.cancelled;
                    for (j, answer) in o.answers.into_iter().enumerate() {
                        let i = misses[j];
                        if let Some(hit) = answer {
                            let (v, r) = &queries[i];
                            cache.insert_at(epoch, *v, r, hit);
                        }
                        answers[i] = answer;
                    }
                    // Sub-batch error indexes map back through `misses`;
                    // `misses` is ascending, so order is preserved.
                    errors = o.errors.into_iter().map(|(j, e)| (misses[j], e)).collect();
                }
                (answers, errors, timed_out, cancelled)
            }
        };
        let elapsed_us = started.elapsed().as_micros().min(u64::MAX as u128) as u64;

        let budget_ms = self.config.budget.map_or(0, |b| b.as_millis().min(u64::MAX as u128) as u64);
        for (i, answer) in answers.iter().enumerate() {
            let reply = match answer {
                Some(true) => "TRUE".to_string(),
                Some(false) => "FALSE".to_string(),
                None => {
                    if let Some((_, e)) = errors.iter().find(|(j, _)| *j == i) {
                        error_reply(e)
                    } else if timed_out {
                        error_reply(&GsrError::Timeout { budget_ms })
                    } else if cancelled {
                        error_reply(&GsrError::Cancelled)
                    } else {
                        error_reply(&GsrError::Internal("query produced no answer".into()))
                    }
                }
            };
            self.stats.record_query(elapsed_us, reply.starts_with("ERR"));
            replies.push_str(&reply);
            replies.push('\n');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsr_core::methods::ThreeDReach;
    use gsr_core::{paper_example, SccSpatialPolicy};

    fn test_server(config: ServerConfig) -> QueryServer {
        let prep = paper_example::prepared();
        let index: Arc<dyn RangeReachIndex> =
            Arc::new(ThreeDReach::build(&prep, SccSpatialPolicy::Replicate));
        QueryServer::bind(("127.0.0.1", 0), index, config).unwrap()
    }

    #[test]
    fn serve_lines_answers_in_request_order() {
        let server = test_server(ServerConfig::default());
        let r = paper_example::query_region();
        let input = format!(
            "REACH {} {} {} {} {}\nREACH {} {} {} {} {}\nSTATS\n",
            paper_example::A, r.min_x, r.min_y, r.max_x, r.max_y,
            paper_example::C, r.min_x, r.min_y, r.max_x, r.max_y,
        );
        let (replies, action) = server.serve_lines(input.as_bytes());
        let lines: Vec<&str> = replies.lines().collect();
        assert_eq!(lines[0], "TRUE");
        assert_eq!(lines[1], "FALSE");
        assert!(lines[2].starts_with("STATS queries=2 errors=0"), "{}", lines[2]);
        assert!(
            lines[2].contains("index_bytes=") && !lines[2].contains("index_bytes=0 "),
            "STATS must report the served index's heap footprint: {}",
            lines[2]
        );
        assert_eq!(action, LineAction::Continue);
    }

    #[test]
    fn serve_lines_maps_all_error_shapes() {
        let server = test_server(ServerConfig::default());
        let input = "REACH 9999 0 0 1 1\nREACH 0 5 5 1 1\nREACH nope\nFETCH\n";
        let (replies, _) = server.serve_lines(input.as_bytes());
        let lines: Vec<&str> = replies.lines().collect();
        assert!(lines[0].starts_with("ERR 4 invalid query vertex"), "{}", lines[0]);
        assert!(lines[1].starts_with("ERR 4 invalid query rectangle"), "{}", lines[1]);
        assert!(lines[2].starts_with("ERR 2 "), "{}", lines[2]);
        assert!(lines[3].starts_with("ERR 2 unknown command"), "{}", lines[3]);
    }

    #[test]
    fn zero_budget_times_out_with_err_5() {
        let server = test_server(ServerConfig {
            threads: 1,
            budget: Some(Duration::ZERO),
            ..ServerConfig::default()
        });
        let (replies, _) = server.serve_lines(b"REACH 0 0 0 1 1\n");
        assert!(replies.starts_with("ERR 5 time budget of 0 ms exceeded"), "{replies}");
    }

    #[test]
    fn cache_repeats_answers_and_counts_hits() {
        let server =
            test_server(ServerConfig { cache_entries: 64, ..ServerConfig::default() });
        let r = paper_example::query_region();
        let line = format!(
            "REACH {} {} {} {} {}\n",
            paper_example::A, r.min_x, r.min_y, r.max_x, r.max_y,
        );
        let (first, _) = server.serve_lines(line.as_bytes());
        assert_eq!(first, "TRUE\n");
        let (second, _) = server.serve_lines(line.as_bytes());
        assert_eq!(second, first, "cached reply must match the computed one");
        let (stats, _) = server.serve_lines(b"STATS\n");
        assert!(stats.contains("cache_hits=1"), "{stats}");
        assert!(stats.contains("cache_misses=1"), "{stats}");
        assert!(stats.contains("cache_evictions=0"), "{stats}");
    }

    #[test]
    fn cache_preserves_order_and_does_not_cache_errors() {
        let server =
            test_server(ServerConfig { cache_entries: 64, ..ServerConfig::default() });
        let r = paper_example::query_region();
        let reach = |v: u32| format!("REACH {v} {} {} {} {}\n", r.min_x, r.min_y, r.max_x, r.max_y);
        // A mixed pipelined batch: good, invalid, good.
        let input = format!("{}REACH 9999 0 0 1 1\n{}", reach(paper_example::A), reach(paper_example::C));
        let (replies, _) = server.serve_lines(input.as_bytes());
        let lines: Vec<&str> = replies.lines().collect();
        assert_eq!(lines[0], "TRUE");
        assert!(lines[1].starts_with("ERR 4 invalid query vertex"), "{}", lines[1]);
        assert_eq!(lines[2], "FALSE");
        // Replaying the invalid query still fails (errors are not cached)
        // and the good queries now hit.
        let (again, _) = server.serve_lines(input.as_bytes());
        assert_eq!(again, replies);
        let (stats, _) = server.serve_lines(b"STATS\n");
        assert!(stats.contains("cache_hits=2"), "{stats}");
        assert!(stats.contains("cache_misses=4"), "{stats}");
    }

    #[test]
    fn reset_zeroes_counters_but_not_the_cache_entries() {
        let server =
            test_server(ServerConfig { cache_entries: 64, ..ServerConfig::default() });
        let r = paper_example::query_region();
        let line = format!(
            "REACH {} {} {} {} {}\n",
            paper_example::A, r.min_x, r.min_y, r.max_x, r.max_y,
        );
        let (_, _) = server.serve_lines(line.as_bytes());
        let (reply, action) = server.serve_lines(b"RESET\n");
        assert_eq!(reply, "OK reset\n");
        assert_eq!(action, LineAction::Continue);
        let (stats, _) = server.serve_lines(b"STATS\n");
        assert!(stats.contains("queries=0 errors=0 p50_us=0 p99_us=0 p999_us=0"), "{stats}");
        // Cached entries survive the reset: replaying the query is a hit.
        let (again, _) = server.serve_lines(line.as_bytes());
        assert_eq!(again, "TRUE\n");
        let (stats, _) = server.serve_lines(b"STATS\n");
        assert!(stats.contains("cache_hits=1"), "{stats}");
        assert!(stats.contains("cache_misses=0"), "{stats}");
    }

    #[test]
    fn shutdown_line_cancels_the_server() {
        let server = test_server(ServerConfig::default());
        let token = server.cancel_token();
        let (replies, action) = server.serve_lines(b"SHUTDOWN\nREACH 0 0 0 1 1\n");
        assert_eq!(replies, "OK shutdown\n", "requests after SHUTDOWN are not served");
        assert_eq!(action, LineAction::Shutdown);
        assert!(token.is_cancelled());
    }

    #[test]
    fn oversize_line_answers_err_2_and_closes() {
        let server = test_server(ServerConfig { max_line: 24, ..ServerConfig::default() });
        let r = paper_example::query_region();
        let good = format!(
            "REACH {} {} {} {} {}",
            paper_example::A, r.min_x, r.min_y, r.max_x, r.max_y,
        );
        assert!(good.len() <= 24, "test setup: the good line must fit the cap");
        let long = format!("REACH 0 0 0 1 1{}", " ".repeat(64));
        let input = format!("{good}\n{long}\n{good}\n");
        let (replies, action) = server.serve_lines(input.as_bytes());
        let lines: Vec<&str> = replies.lines().collect();
        assert_eq!(lines[0], "TRUE", "queries before the oversize line are served in order");
        assert_eq!(lines[1], "ERR 2 line too long (max 24 bytes)");
        assert_eq!(lines.len(), 2, "nothing after the oversize line is served");
        assert_eq!(action, LineAction::Close);
    }

    #[test]
    fn batches_split_at_the_cap_with_identical_answers() {
        let server = test_server(ServerConfig { max_batch: 2, ..ServerConfig::default() });
        let r = paper_example::query_region();
        let reach =
            |v: u32| format!("REACH {v} {} {} {} {}\n", r.min_x, r.min_y, r.max_x, r.max_y);
        let input = format!(
            "{}{}{}{}{}",
            reach(paper_example::A),
            reach(paper_example::C),
            reach(paper_example::A),
            reach(paper_example::C),
            reach(paper_example::A),
        );
        let (replies, action) = server.serve_lines(input.as_bytes());
        assert_eq!(replies, "TRUE\nFALSE\nTRUE\nFALSE\nTRUE\n");
        assert_eq!(action, LineAction::Continue);
        let (stats, _) = server.serve_lines(b"STATS\n");
        assert!(stats.contains("queries=5"), "splitting must not drop queries: {stats}");
    }

    #[test]
    fn reload_of_a_missing_path_keeps_the_old_index_serving() {
        let server = test_server(ServerConfig::default());
        let r = paper_example::query_region();
        let input = format!(
            "RELOAD /definitely/not/a/snapshot.gsr\nREACH {} {} {} {} {}\nSTATS\n",
            paper_example::A, r.min_x, r.min_y, r.max_x, r.max_y,
        );
        let (replies, action) = server.serve_lines(input.as_bytes());
        let lines: Vec<&str> = replies.lines().collect();
        assert!(lines[0].starts_with("ERR 3 "), "load failures are typed: {}", lines[0]);
        assert_eq!(lines[1], "TRUE", "the old index answers as before");
        assert!(lines[2].contains("reloads=0"), "failed swaps are not counted: {}", lines[2]);
        assert_eq!(action, LineAction::Continue);
    }

    /// Two-dataset server: "default" is the paper example with its points,
    /// "void" is the same graph with every point stripped (all queries
    /// FALSE) — so a cross-dataset cache collision flips an answer.
    fn two_dataset_server(config: ServerConfig) -> QueryServer {
        let prep = paper_example::prepared();
        let with_points: Arc<dyn RangeReachIndex> =
            Arc::new(ThreeDReach::build(&prep, SccSpatialPolicy::Replicate));
        let net = paper_example::network();
        let stripped = gsr_core::GeosocialNetwork::new(
            net.graph().clone(),
            vec![None; net.num_vertices()],
        )
        .unwrap();
        let void_prep = gsr_core::PreparedNetwork::new(stripped);
        let void: Arc<dyn RangeReachIndex> =
            Arc::new(ThreeDReach::build(&void_prep, SccSpatialPolicy::Replicate));
        QueryServer::bind_many(
            ("127.0.0.1", 0),
            vec![("default".to_string(), with_points), ("void".to_string(), void)],
            config,
        )
        .unwrap()
    }

    #[test]
    fn use_switches_datasets_and_unknown_names_are_typed_errors() {
        let server = two_dataset_server(ServerConfig::default());
        let r = paper_example::query_region();
        let reach = format!(
            "REACH {} {} {} {} {}\n",
            paper_example::A, r.min_x, r.min_y, r.max_x, r.max_y,
        );
        let mut conn = ConnState::default();
        let input = format!("{reach}USE void\n{reach}USE default\n{reach}USE nope\n");
        let (replies, action) = server.serve_lines_conn(input.as_bytes(), &mut conn);
        let lines: Vec<&str> = replies.lines().collect();
        assert_eq!(lines[0], "TRUE");
        assert_eq!(lines[1], "OK use void");
        assert_eq!(lines[2], "FALSE", "the same query against the pointless dataset");
        assert_eq!(lines[3], "OK use default");
        assert_eq!(lines[4], "TRUE");
        assert!(
            lines[5].starts_with("ERR 2 unknown dataset \"nope\"") && lines[5].contains("void"),
            "{}",
            lines[5]
        );
        assert_eq!(action, LineAction::Continue);
        assert_eq!(conn.dataset, 0, "a failed USE must not switch the connection");
    }

    #[test]
    fn cache_entries_never_collide_across_datasets() {
        let server =
            two_dataset_server(ServerConfig { cache_entries: 64, ..ServerConfig::default() });
        let r = paper_example::query_region();
        let reach = format!(
            "REACH {} {} {} {} {}\n",
            paper_example::A, r.min_x, r.min_y, r.max_x, r.max_y,
        );
        let mut conn = ConnState::default();
        // Miss + insert under dataset "default"'s epoch.
        let (first, _) = server.serve_lines_conn(reach.as_bytes(), &mut conn);
        assert_eq!(first, "TRUE\n");
        // The identical (vertex, rect) under "void" must be a fresh miss
        // answering FALSE — a shared-key cache would replay TRUE here.
        let input = format!("USE void\n{reach}");
        let (second, _) = server.serve_lines_conn(input.as_bytes(), &mut conn);
        assert_eq!(second, "OK use void\nFALSE\n");
        let (stats, _) = server.serve_lines_conn(b"STATS\n", &mut conn);
        assert!(stats.contains("cache_hits=0"), "{stats}");
        assert!(stats.contains("cache_misses=2"), "{stats}");
        // Each dataset replays its own answer from its own entry.
        let (again, _) = server.serve_lines_conn(reach.as_bytes(), &mut conn);
        assert_eq!(again, "FALSE\n");
        let mut fresh = ConnState::default();
        let (original, _) = server.serve_lines_conn(reach.as_bytes(), &mut fresh);
        assert_eq!(original, "TRUE\n");
        let (stats, _) = server.serve_lines_conn(b"STATS\n", &mut conn);
        assert!(stats.contains("cache_hits=2"), "{stats}");
    }

    #[test]
    fn stats_reports_shard_routing_counters_and_reset_zeroes_them() {
        let net = paper_example::network();
        let members: Vec<gsr_core::ShardMember> = gsr_core::partition_tiles(&net, 2)
            .iter()
            .map(|tile| {
                let prep = gsr_core::PreparedNetwork::new(
                    gsr_core::tile_network(&net, tile).unwrap(),
                );
                gsr_core::ShardMember {
                    index: Arc::new(ThreeDReach::build(&prep, SccSpatialPolicy::Replicate)),
                    mbr: tile.mbr,
                }
            })
            .collect();
        let sharded: Arc<dyn RangeReachIndex> =
            Arc::new(gsr_core::ShardedIndex::new(members).unwrap());
        let server =
            QueryServer::bind(("127.0.0.1", 0), sharded, ServerConfig::default()).unwrap();
        let r = paper_example::query_region();
        let input = format!(
            "REACH {} {} {} {} {}\nSTATS\n",
            paper_example::A, r.min_x, r.min_y, r.max_x, r.max_y,
        );
        let (replies, _) = server.serve_lines(input.as_bytes());
        let lines: Vec<&str> = replies.lines().collect();
        assert_eq!(lines[0], "TRUE");
        assert!(lines[1].contains("shards=2"), "{}", lines[1]);
        assert!(!lines[1].contains("probes=0 "), "a served query must probe: {}", lines[1]);
        assert!(lines[1].contains("probe_p99_us="), "{}", lines[1]);
        let (after_reset, _) = server.serve_lines(b"RESET\nSTATS\n");
        assert!(
            after_reset.contains("shards=2 probes=0 pruned=0"),
            "RESET must zero the routing counters: {after_reset}"
        );
    }

    #[test]
    fn reload_swaps_the_index_and_clears_the_cache() {
        let dir = std::env::temp_dir().join("gsr_server_reload_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.gsr");
        let prep = paper_example::prepared();
        let snapshot = gsr_store::SnapshotIndex::ThreeDReach(ThreeDReach::build(
            &prep,
            SccSpatialPolicy::Replicate,
        ));
        gsr_store::save_to_path(&path, &snapshot).unwrap();

        let server = test_server(ServerConfig { cache_entries: 64, ..ServerConfig::default() });
        let r = paper_example::query_region();
        let line = format!(
            "REACH {} {} {} {} {}\n",
            paper_example::A, r.min_x, r.min_y, r.max_x, r.max_y,
        );
        let (first, _) = server.serve_lines(line.as_bytes());
        assert_eq!(first, "TRUE\n");

        let (reply, action) = server.serve_lines(format!("RELOAD {}\n", path.display()).as_bytes());
        assert!(reply.starts_with("OK reload index_bytes="), "{reply}");
        assert_eq!(action, LineAction::Continue);

        // Same answer from the swapped-in index, but recomputed: the
        // cache was cleared, so this is a second miss, not a hit.
        let (again, _) = server.serve_lines(line.as_bytes());
        assert_eq!(again, "TRUE\n");
        let (stats, _) = server.serve_lines(b"STATS\n");
        assert!(stats.contains("cache_hits=0"), "{stats}");
        assert!(stats.contains("cache_misses=2"), "{stats}");
        assert!(stats.contains("reloads=1"), "{stats}");

        std::fs::remove_dir_all(&dir).ok();
    }
}
