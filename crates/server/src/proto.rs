//! The newline-delimited text protocol and its error-code mapping.
//!
//! Requests are single lines; replies are single lines. One request, one
//! reply, in order — clients may pipeline arbitrarily many requests
//! without waiting.
//!
//! ```text
//! REACH <v> <min_x> <min_y> <max_x> <max_y>   ->  TRUE | FALSE | ERR <code> <msg>
//! USE <dataset>                               ->  OK use <dataset> | ERR 2 unknown dataset (this connection switches index)
//! STATS                                       ->  STATS queries=N errors=N p50_us=N p99_us=N p999_us=N index_bytes=N ...
//! RESET                                       ->  OK reset      (zeroes counters, keeps the index)
//! RELOAD <path>                               ->  OK reload index_bytes=N | ERR <code> <msg> (old index keeps serving)
//! SHUTDOWN                                    ->  OK shutdown   (server stops accepting)
//! ```
//!
//! `ERR` codes mirror the CLI's exit-code mapping of the [`GsrError`]
//! taxonomy, so a service client and a shell script read the same numbers:
//! `1` internal, `2` protocol/malformed, `3` load, `4` invalid query
//! (vertex or rectangle), `5` budget exceeded, `6` cancelled. Code `7`
//! ([`BUSY_ERR`]) is service-level overload: the server sheds the
//! connection (`ERR 7 busy retry_ms=<hint>` on admission-control rejection,
//! `ERR 7 idle timeout ...` when a silent connection is reaped) and closes
//! it; the client should back off and reconnect.

use gsr_core::GsrError;
use gsr_geo::Rect;
use gsr_graph::VertexId;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `REACH v min_x min_y max_x max_y` — one `RangeReach` query. The
    /// rectangle is *not* validated here; validation happens inside the
    /// batch executor so invalid regions surface as `ERR 4`, per query.
    Reach(VertexId, Rect),
    /// `USE <dataset>` — switch this connection's subsequent requests to
    /// the named dataset (one process can register several indexes; see
    /// the server's registry). Pipelined `REACH` lines before a `USE` are
    /// flushed against the previous dataset first.
    Use(String),
    /// `STATS` — report service counters.
    Stats,
    /// `RESET` — zero the service counters (queries, errors, latency
    /// histogram, cache hit/miss/eviction tallies). The loaded index and
    /// cached entries are untouched; a load driver resets between sweep
    /// steps so each step's `STATS` stands alone.
    Reset,
    /// `RELOAD <path>` — load and CRC-validate the snapshot at `path`,
    /// then atomically swap it in as the served index (result cache
    /// cleared; in-flight batches finish on the old index). On any load
    /// failure the old index keeps serving and the reply is a typed `ERR`.
    Reload(String),
    /// `SHUTDOWN` — stop the server gracefully.
    Shutdown,
}

/// The `ERR` code of a [`GsrError`], aligned with the CLI exit codes.
pub fn error_code(e: &GsrError) -> u8 {
    match e {
        GsrError::Internal(_) => 1,
        GsrError::Load(_) => 3,
        GsrError::InvalidVertex { .. } | GsrError::InvalidRect { .. } => 4,
        GsrError::Timeout { .. } => 5,
        GsrError::Cancelled => 6,
    }
}

/// Formats the `ERR` reply line for a query error.
pub fn error_reply(e: &GsrError) -> String {
    format!("ERR {} {e}", error_code(e))
}

/// Protocol-level error code for lines that never parse into a request.
pub const PROTOCOL_ERR: u8 = 2;

/// Service-level overload error code: the server refused or reaped the
/// connection (admission control, idle timeout). Not part of the
/// [`GsrError`] taxonomy — overload is a property of the service, not of
/// any one query.
pub const BUSY_ERR: u8 = 7;

/// The shed reply sent (best-effort) before closing a refused connection.
/// `retry_ms` is a backoff hint, not a promise of capacity.
pub fn busy_reply(retry_ms: u64) -> String {
    format!("ERR {BUSY_ERR} busy retry_ms={retry_ms}\n")
}

/// Parses one request line. `Ok(None)` for blank lines (ignored),
/// `Err(msg)` for malformed input — the message becomes an
/// `ERR 2 <msg>` reply.
pub fn parse_line(line: &str) -> Result<Option<Request>, String> {
    let line = line.trim_end_matches('\r');
    let mut tokens = line.split_whitespace();
    let Some(cmd) = tokens.next() else {
        return Ok(None);
    };
    if cmd.eq_ignore_ascii_case("REACH") {
        let mut field = |name: &str| {
            tokens.next().ok_or_else(|| format!("REACH: missing <{name}> (usage: REACH <v> <min_x> <min_y> <max_x> <max_y>)"))
        };
        let v = field("v")?;
        let v: VertexId =
            v.parse().map_err(|_| format!("REACH: vertex id {v:?} is not a non-negative integer"))?;
        let mut coord = |name: &str| -> Result<f64, String> {
            let raw = tokens
                .next()
                .ok_or_else(|| format!("REACH: missing <{name}> (usage: REACH <v> <min_x> <min_y> <max_x> <max_y>)"))?;
            raw.parse().map_err(|_| format!("REACH: coordinate {raw:?} is not a number"))
        };
        let min_x = coord("min_x")?;
        let min_y = coord("min_y")?;
        let max_x = coord("max_x")?;
        let max_y = coord("max_y")?;
        if let Some(extra) = tokens.next() {
            return Err(format!("REACH: unexpected trailing token {extra:?}"));
        }
        // Struct literal, not `Rect::new`: an inverted rectangle must reach
        // the validating query layer (-> `ERR 4`), not a debug assertion.
        Ok(Some(Request::Reach(v, Rect { min_x, min_y, max_x, max_y })))
    } else if cmd.eq_ignore_ascii_case("USE") {
        // The dataset name is everything after the verb (names with
        // spaces survive); whitespace-only means the argument is missing.
        let name = line.trim_start()[cmd.len()..].trim();
        if name.is_empty() {
            return Err("USE: missing <dataset> (usage: USE <dataset>)".into());
        }
        Ok(Some(Request::Use(name.to_string())))
    } else if cmd.eq_ignore_ascii_case("STATS") {
        if tokens.next().is_some() {
            return Err("STATS takes no arguments".into());
        }
        Ok(Some(Request::Stats))
    } else if cmd.eq_ignore_ascii_case("RESET") {
        if tokens.next().is_some() {
            return Err("RESET takes no arguments".into());
        }
        Ok(Some(Request::Reset))
    } else if cmd.eq_ignore_ascii_case("RELOAD") {
        // The path is everything after the verb, so snapshot paths with
        // spaces survive; whitespace-only means the argument is missing.
        let path = line.trim_start()[cmd.len()..].trim();
        if path.is_empty() {
            return Err("RELOAD: missing <path> (usage: RELOAD <snapshot-path>)".into());
        }
        Ok(Some(Request::Reload(path.to_string())))
    } else if cmd.eq_ignore_ascii_case("SHUTDOWN") {
        if tokens.next().is_some() {
            return Err("SHUTDOWN takes no arguments".into());
        }
        Ok(Some(Request::Shutdown))
    } else {
        Err(format!(
            "unknown command {cmd:?} (expected REACH, USE, STATS, RESET, RELOAD or SHUTDOWN)"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_well_formed_requests() {
        assert_eq!(
            parse_line("REACH 7 0.5 1 2.5 3"),
            Ok(Some(Request::Reach(7, Rect { min_x: 0.5, min_y: 1.0, max_x: 2.5, max_y: 3.0 })))
        );
        assert_eq!(parse_line("stats"), Ok(Some(Request::Stats)));
        assert_eq!(parse_line("reset"), Ok(Some(Request::Reset)));
        assert_eq!(
            parse_line("RELOAD /var/snapshots/weeplaces.gsr"),
            Ok(Some(Request::Reload("/var/snapshots/weeplaces.gsr".into())))
        );
        assert_eq!(
            parse_line("  reload my snapshots/with spaces.gsr \r"),
            Ok(Some(Request::Reload("my snapshots/with spaces.gsr".into())))
        );
        assert_eq!(parse_line("USE gowalla"), Ok(Some(Request::Use("gowalla".into()))));
        assert_eq!(parse_line("  use yelp scale 3 \r"), Ok(Some(Request::Use("yelp scale 3".into()))));
        assert_eq!(parse_line("SHUTDOWN\r"), Ok(Some(Request::Shutdown)));
        assert_eq!(parse_line(""), Ok(None));
        assert_eq!(parse_line("   "), Ok(None));
    }

    #[test]
    fn rejects_malformed_requests_with_diagnostics() {
        assert!(parse_line("REACH").unwrap_err().contains("missing <v>"));
        assert!(parse_line("REACH x 0 0 1 1").unwrap_err().contains("vertex id"));
        assert!(parse_line("REACH 3 0 0 1").unwrap_err().contains("missing <max_y>"));
        assert!(parse_line("REACH 3 0 0 one 1").unwrap_err().contains("not a number"));
        assert!(parse_line("REACH 3 0 0 1 1 9").unwrap_err().contains("trailing"));
        assert!(parse_line("FETCH 3").unwrap_err().contains("unknown command"));
        assert!(parse_line("STATS now").unwrap_err().contains("no arguments"));
        assert!(parse_line("RESET hard").unwrap_err().contains("no arguments"));
        assert!(parse_line("RELOAD").unwrap_err().contains("missing <path>"));
        assert!(parse_line("RELOAD   \r").unwrap_err().contains("missing <path>"));
        assert!(parse_line("USE").unwrap_err().contains("missing <dataset>"));
        assert!(parse_line("USE   \r").unwrap_err().contains("missing <dataset>"));
    }

    #[test]
    fn busy_reply_carries_the_overload_code_and_hint() {
        assert_eq!(busy_reply(100), "ERR 7 busy retry_ms=100\n");
        assert_eq!(BUSY_ERR, 7, "code 7 extends the CLI exit-code range, which ends at 6");
    }

    #[test]
    fn inverted_rectangles_parse_and_defer_validation() {
        // The parser must not judge geometry; `ERR 4` comes from the query
        // layer.
        let r = parse_line("REACH 0 5 5 1 1").unwrap();
        assert!(matches!(r, Some(Request::Reach(0, _))));
    }

    #[test]
    fn error_codes_mirror_cli_exit_codes() {
        assert_eq!(error_code(&GsrError::Internal("x".into())), 1);
        assert_eq!(error_code(&GsrError::Load("x".into())), 3);
        assert_eq!(error_code(&GsrError::InvalidVertex { vertex: 9, num_vertices: 4 }), 4);
        assert_eq!(error_code(&GsrError::InvalidRect { reason: "r".into() }), 4);
        assert_eq!(error_code(&GsrError::Timeout { budget_ms: 5 }), 5);
        assert_eq!(error_code(&GsrError::Cancelled), 6);
        assert!(error_reply(&GsrError::Cancelled).starts_with("ERR 6 "));
    }
}
