//! Lock-free service counters over the workspace-shared latency histogram.
//!
//! The histogram implementation lives in [`gsr_core::hist`] so the bench
//! crate's open-loop load recorder and this server quantize latency
//! identically; this module re-exports it and layers the `STATS` counters
//! on top.

use std::sync::atomic::{AtomicU64, Ordering};

pub use gsr_core::hist::LatencyHistogram;

/// Counters shared by all worker threads of a query server.
#[derive(Debug, Default)]
pub struct ServerStats {
    queries: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    accept_errors: AtomicU64,
    reloads: AtomicU64,
    load_ms: AtomicU64,
    snapshot_format: AtomicU64,
    hist: LatencyHistogram,
}

impl ServerStats {
    /// Records one answered `REACH` request and its latency. `is_error`
    /// marks replies that carried an `ERR` line instead of an answer.
    pub fn record_query(&self, latency_us: u64, is_error: bool) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        if is_error {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.hist.record_us(latency_us);
    }

    /// Records a protocol-level error (malformed or unknown line) that
    /// never became a query. Also used for failed control verbs (e.g. a
    /// `RELOAD` whose snapshot would not load): it counts `ERR` reply
    /// lines that are not per-query answers.
    pub fn record_protocol_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection shed because the pending accept→worker queue
    /// was at `--max-pending`.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection rejected because `--max-conns` live
    /// connections were already admitted.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a non-`WouldBlock` `accept()` failure (EMFILE storms and
    /// kin); the accept loop backs off exponentially while these persist.
    pub fn record_accept_error(&self) {
        self.accept_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a successful `RELOAD` index swap.
    pub fn record_reload(&self) {
        self.reloads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records how the served snapshot was (last) loaded: wall-clock load
    /// time in milliseconds and the snapshot wire-format version (0 when
    /// the index was built in-process rather than loaded). Set at startup
    /// and on every successful `RELOAD`; `RESET` leaves it alone — restart
    /// cost is a property of the serving index, not of the traffic window.
    pub fn record_load(&self, load_ms: u64, snapshot_format: u32) {
        self.load_ms.store(load_ms, Ordering::Relaxed);
        self.snapshot_format.store(snapshot_format as u64, Ordering::Relaxed);
    }

    /// Zeroes the query/error counters and the latency histogram, for a
    /// `RESET` request. Counter wipes are not a transaction; requests in
    /// flight may straddle the reset, which a load driver avoids by
    /// resetting between steps on an otherwise idle server.
    pub fn reset(&self) {
        self.queries.store(0, Ordering::Relaxed);
        self.errors.store(0, Ordering::Relaxed);
        self.shed.store(0, Ordering::Relaxed);
        self.rejected.store(0, Ordering::Relaxed);
        self.accept_errors.store(0, Ordering::Relaxed);
        self.reloads.store(0, Ordering::Relaxed);
        self.hist.reset();
    }

    /// A consistent-enough snapshot of the counters (each counter is read
    /// atomically; the set is not a transaction, which monitoring does not
    /// need).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            p50_us: self.hist.quantile_us(0.50),
            p99_us: self.hist.quantile_us(0.99),
            p999_us: self.hist.quantile_us(0.999),
            index_bytes: 0,
            cache: crate::cache::CacheStats::default(),
            shed: self.shed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            accept_errors: self.accept_errors.load(Ordering::Relaxed),
            reloads: self.reloads.load(Ordering::Relaxed),
            live: 0,
            load_ms: self.load_ms.load(Ordering::Relaxed),
            snapshot_format: self.snapshot_format.load(Ordering::Relaxed) as u32,
            shards: 0,
            probes: 0,
            pruned: 0,
        }
    }
}

/// Point-in-time view of a server's counters, as reported by `STATS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// `REACH` requests answered (including error replies).
    pub queries: u64,
    /// `ERR` replies sent (query errors and protocol errors).
    pub errors: u64,
    /// Median request latency, microseconds (bucket upper bound).
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds (bucket upper bound).
    pub p99_us: u64,
    /// 99.9th-percentile request latency, microseconds (bucket upper
    /// bound). The open-loop load sweep keys off this tail.
    pub p999_us: u64,
    /// Heap footprint of the served index in bytes
    /// ([`gsr_core::RangeReachIndex::index_bytes`]). Filled in by the
    /// server, which owns the index.
    pub index_bytes: u64,
    /// Result-cache counters; all zero when the cache is disabled. Filled
    /// in by the server, which owns the cache.
    pub cache: crate::cache::CacheStats,
    /// Connections shed because the pending queue was at `--max-pending`.
    pub shed: u64,
    /// Connections rejected because `--max-conns` were already live.
    pub rejected: u64,
    /// Non-`WouldBlock` `accept()` failures absorbed with backoff.
    pub accept_errors: u64,
    /// Successful `RELOAD` index swaps.
    pub reloads: u64,
    /// Admitted connections currently open (queued or being served) — a
    /// gauge, not a counter; `RESET` does not touch it. Filled in by the
    /// server, which owns the admission count.
    pub live: u64,
    /// Wall-clock milliseconds the serving index took to load (startup or
    /// last `RELOAD`); 0 when it was built in-process. `RESET` does not
    /// touch it.
    pub load_ms: u64,
    /// Snapshot wire-format version the serving index was loaded from
    /// (2 = streaming decode, 3 = zero-copy mmap); 0 when built
    /// in-process. `RESET` does not touch it.
    pub snapshot_format: u32,
    /// Shard count of the served index when it is a sharded
    /// scatter-gather router ([`gsr_core::ShardedIndex`]); 0 for a plain
    /// single index. Filled in by the server from
    /// [`gsr_core::RangeReachIndex::shard_stats`].
    pub shards: u64,
    /// Shard probes actually executed (post MBR pruning, pre
    /// short-circuit); 0 for a plain single index. Filled in by the
    /// server.
    pub probes: u64,
    /// Shard probes skipped because the shard's MBR missed the query
    /// rectangle; 0 for a plain single index. Filled in by the server.
    pub pruned: u64,
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "queries={} errors={} p50_us={} p99_us={} p999_us={} index_bytes={} \
             cache_hits={} cache_misses={} cache_evictions={} \
             shed={} rejected={} accept_errors={} reloads={} live={} \
             load_ms={} snapshot_format={} shards={} probes={} pruned={}",
            self.queries,
            self.errors,
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.index_bytes,
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.shed,
            self.rejected,
            self.accept_errors,
            self.reloads,
            self.live,
            self.load_ms,
            self.snapshot_format,
            self.shards,
            self.probes,
            self.pruned,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_land_in_the_right_buckets() {
        let h = LatencyHistogram::default();
        // 99 fast samples in [64, 128), one slow outlier in [65536, 131072).
        for _ in 0..99 {
            h.record_us(100);
        }
        h.record_us(100_000);
        assert_eq!(h.quantile_us(0.50), 127);
        assert_eq!(h.quantile_us(0.99), 127);
        assert_eq!(h.quantile_us(1.0), 131_071);
    }

    #[test]
    fn zero_latency_is_not_lost() {
        let h = LatencyHistogram::default();
        h.record_us(0);
        assert_eq!(h.quantile_us(0.5), 1, "sub-microsecond samples land in bucket 0");
    }

    #[test]
    fn stats_snapshot_formats_one_line() {
        let s = ServerStats::default();
        s.record_query(10, false);
        s.record_query(10, true);
        s.record_protocol_error();
        s.record_shed();
        s.record_shed();
        s.record_rejected();
        s.record_accept_error();
        s.record_reload();
        s.record_load(7, 3);
        let snap = s.snapshot();
        assert_eq!(snap.queries, 2);
        assert_eq!(snap.errors, 2);
        assert_eq!(
            snap.to_string(),
            "queries=2 errors=2 p50_us=15 p99_us=15 p999_us=15 index_bytes=0 \
             cache_hits=0 cache_misses=0 cache_evictions=0 \
             shed=2 rejected=1 accept_errors=1 reloads=1 live=0 \
             load_ms=7 snapshot_format=3 shards=0 probes=0 pruned=0"
        );
    }

    #[test]
    fn reset_zeroes_counters_and_histogram() {
        let s = ServerStats::default();
        s.record_query(10, false);
        s.record_query(1000, true);
        s.record_protocol_error();
        s.record_shed();
        s.record_rejected();
        s.record_accept_error();
        s.record_reload();
        s.record_load(12, 3);
        s.reset();
        let snap = s.snapshot();
        assert_eq!(snap.queries, 0);
        assert_eq!(snap.errors, 0);
        assert_eq!(snap.p50_us, 0);
        assert_eq!(snap.p999_us, 0);
        assert_eq!(snap.shed, 0);
        assert_eq!(snap.rejected, 0);
        assert_eq!(snap.accept_errors, 0);
        assert_eq!(snap.reloads, 0);
        // Restart cost describes the serving index, not the traffic
        // window: RESET must not wipe it.
        assert_eq!(snap.load_ms, 12);
        assert_eq!(snap.snapshot_format, 3);
    }
}
