//! Lock-free service counters and a fixed-bucket latency histogram.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two latency buckets. Bucket `i` counts requests with
/// latency in `[2^i, 2^(i+1))` microseconds (bucket 0 also absorbs
/// sub-microsecond samples); 40 buckets cover up to ~12.7 days, far past
/// any realistic request.
const BUCKETS: usize = 40;

/// A fixed-bucket, power-of-two latency histogram. Recording is a single
/// relaxed atomic increment, so the hot path never contends on a lock; the
/// price is quantiles quantized to bucket upper bounds, which is plenty
/// for service monitoring.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

impl LatencyHistogram {
    /// Records one sample, in microseconds.
    pub fn record_us(&self, us: u64) {
        let idx = (63 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the bucket
    /// holding it, in microseconds; 0 when no samples were recorded.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return (2u64 << i) - 1; // upper bound of bucket i
            }
        }
        (2u64 << (BUCKETS - 1)) - 1
    }
}

/// Counters shared by all worker threads of a query server.
#[derive(Debug, Default)]
pub struct ServerStats {
    queries: AtomicU64,
    errors: AtomicU64,
    hist: LatencyHistogram,
}

impl ServerStats {
    /// Records one answered `REACH` request and its latency. `is_error`
    /// marks replies that carried an `ERR` line instead of an answer.
    pub fn record_query(&self, latency_us: u64, is_error: bool) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        if is_error {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.hist.record_us(latency_us);
    }

    /// Records a protocol-level error (malformed or unknown line) that
    /// never became a query.
    pub fn record_protocol_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot of the counters (each counter is read
    /// atomically; the set is not a transaction, which monitoring does not
    /// need).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            p50_us: self.hist.quantile_us(0.50),
            p99_us: self.hist.quantile_us(0.99),
            index_bytes: 0,
            cache: crate::cache::CacheStats::default(),
        }
    }
}

/// Point-in-time view of a server's counters, as reported by `STATS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// `REACH` requests answered (including error replies).
    pub queries: u64,
    /// `ERR` replies sent (query errors and protocol errors).
    pub errors: u64,
    /// Median request latency, microseconds (bucket upper bound).
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds (bucket upper bound).
    pub p99_us: u64,
    /// Heap footprint of the served index in bytes
    /// ([`gsr_core::RangeReachIndex::index_bytes`]). Filled in by the
    /// server, which owns the index.
    pub index_bytes: u64,
    /// Result-cache counters; all zero when the cache is disabled. Filled
    /// in by the server, which owns the cache.
    pub cache: crate::cache::CacheStats,
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "queries={} errors={} p50_us={} p99_us={} index_bytes={} \
             cache_hits={} cache_misses={} cache_evictions={}",
            self.queries,
            self.errors,
            self.p50_us,
            self.p99_us,
            self.index_bytes,
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.quantile_us(0.99), 0);
    }

    #[test]
    fn quantiles_land_in_the_right_buckets() {
        let h = LatencyHistogram::default();
        // 99 fast samples in [64, 128), one slow outlier in [65536, 131072).
        for _ in 0..99 {
            h.record_us(100);
        }
        h.record_us(100_000);
        assert_eq!(h.quantile_us(0.50), 127);
        assert_eq!(h.quantile_us(0.99), 127);
        assert_eq!(h.quantile_us(1.0), 131_071);
    }

    #[test]
    fn zero_latency_is_not_lost() {
        let h = LatencyHistogram::default();
        h.record_us(0);
        assert_eq!(h.quantile_us(0.5), 1, "sub-microsecond samples land in bucket 0");
    }

    #[test]
    fn stats_snapshot_formats_one_line() {
        let s = ServerStats::default();
        s.record_query(10, false);
        s.record_query(10, true);
        s.record_protocol_error();
        let snap = s.snapshot();
        assert_eq!(snap.queries, 2);
        assert_eq!(snap.errors, 2);
        assert_eq!(
            snap.to_string(),
            "queries=2 errors=2 p50_us=15 p99_us=15 index_bytes=0 \
             cache_hits=0 cache_misses=0 cache_evictions=0"
        );
    }
}
