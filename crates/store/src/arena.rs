//! [`ArenaBytes`]: the byte region a v3 snapshot is served from.
//!
//! A v3 snapshot's sections *are* the index arenas, so the load path needs
//! an immutable byte region whose address is stable for the lifetime of
//! the index — that is what `gsr_graph::Col` views borrow from. Two
//! flavors exist:
//!
//! * **Mapped** (unix): the file is `mmap(2)`'d read-only, so loading is
//!   O(1) and the kernel pages arenas in on demand at disk bandwidth. The
//!   syscall shim is declared here directly (three `extern "C"` items) —
//!   the build stays dependency-free.
//! * **Owned**: a 64-byte-aligned heap buffer filled with one bulk read —
//!   the fallback for non-unix targets, for readers that are not files,
//!   and for misaligned caller-provided slices (which are copied once to
//!   restore alignment).
//!
//! Either way the region implements [`StableBytes`], so columns built on
//! it keep it alive and queries never copy.
#![allow(unsafe_code)]

use gsr_graph::StableBytes;

/// Alignment of the owned buffer and of every section payload inside a v3
/// snapshot. 64 covers every column element type (max 8) with room for
/// cache-line and SIMD-friendly starts.
pub const ARENA_ALIGN: usize = 64;

#[repr(C, align(64))]
#[derive(Clone, Copy)]
struct AlignedBlock([u8; ARENA_ALIGN]);

/// A 64-byte-aligned, immutable heap buffer. Backed by a `Vec` of aligned
/// blocks so no allocator shims are needed; `len` trims the tail padding.
struct AlignedBuf {
    blocks: Vec<AlignedBlock>,
    len: usize,
}

impl AlignedBuf {
    fn from_slice(bytes: &[u8]) -> Self {
        let nblocks = bytes.len().div_ceil(ARENA_ALIGN);
        let mut blocks = vec![AlignedBlock([0; ARENA_ALIGN]); nblocks];
        // SAFETY: `AlignedBlock` is a plain byte array (no padding), so the
        // block storage is valid `u8` storage of nblocks * 64 >= len bytes.
        let dst = unsafe {
            std::slice::from_raw_parts_mut(blocks.as_mut_ptr() as *mut u8, nblocks * ARENA_ALIGN)
        };
        dst[..bytes.len()].copy_from_slice(bytes);
        AlignedBuf { blocks, len: bytes.len() }
    }

    fn as_bytes(&self) -> &[u8] {
        // SAFETY: same layout argument as in `from_slice`; `len` never
        // exceeds the allocated block bytes.
        unsafe { std::slice::from_raw_parts(self.blocks.as_ptr() as *const u8, self.len) }
    }
}

#[cfg(unix)]
mod mmap_sys {
    //! Minimal read-only `mmap` shim (no libc crate; the three symbols are
    //! part of every unix libc ABI this workspace targets).
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;
}

/// A read-only private mapping of a whole file. Unmapped on drop.
#[cfg(unix)]
struct Mapping {
    ptr: *const u8,
    len: usize,
}

#[cfg(unix)]
impl Mapping {
    fn of_file(file: &std::fs::File, len: usize) -> std::io::Result<Self> {
        use std::os::unix::io::AsRawFd;
        debug_assert!(len > 0, "empty files take the owned path");
        // SAFETY: fd is a valid open file for the duration of the call;
        // PROT_READ + MAP_PRIVATE never lets writes through to the file;
        // the result is checked against MAP_FAILED before use.
        let ptr = unsafe {
            mmap_sys::mmap(
                std::ptr::null_mut(),
                len,
                mmap_sys::PROT_READ,
                mmap_sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == mmap_sys::MAP_FAILED {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Mapping { ptr: ptr as *const u8, len })
    }
}

#[cfg(unix)]
impl Drop for Mapping {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`len` came from a successful mmap of exactly `len`
        // bytes and are unmapped exactly once (Drop).
        unsafe {
            mmap_sys::munmap(self.ptr as *mut std::os::raw::c_void, self.len);
        }
    }
}

// SAFETY: the mapping is read-only and its address never changes until
// munmap in Drop; raw pointers are the only reason Send/Sync aren't derived.
#[cfg(unix)]
unsafe impl Send for Mapping {}
#[cfg(unix)]
unsafe impl Sync for Mapping {}

enum ArenaData {
    Owned(AlignedBuf),
    #[cfg(unix)]
    Mapped(Mapping),
}

/// An immutable byte region backing a loaded v3 snapshot: a memory-mapped
/// file on unix, a 64-byte-aligned heap buffer otherwise. Implements
/// [`StableBytes`], so `Col` views hold it alive for as long as any column
/// borrows from it.
pub struct ArenaBytes {
    data: ArenaData,
}

impl ArenaBytes {
    /// Copies `bytes` into a fresh 64-byte-aligned owned buffer. This is
    /// the realignment path: the input may live anywhere (a test vector, a
    /// network buffer), the copy restores the alignment the zero-copy
    /// column views require.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        ArenaBytes { data: ArenaData::Owned(AlignedBuf::from_slice(bytes)) }
    }

    /// Maps (unix) or bulk-reads (elsewhere) a whole file. The mapping is
    /// read-only and private; loading cost is O(1) on the mapped path and
    /// one sequential read otherwise. Empty files become an empty owned
    /// buffer (`mmap` rejects zero-length maps).
    pub fn from_file(file: &std::fs::File) -> std::io::Result<Self> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "snapshot larger than memory")
        })?;
        if len == 0 {
            return Ok(ArenaBytes::copy_from_slice(&[]));
        }
        #[cfg(unix)]
        {
            Mapping::of_file(file, len).map(|m| ArenaBytes { data: ArenaData::Mapped(m) })
        }
        #[cfg(not(unix))]
        {
            use std::io::Read;
            let mut bytes = Vec::with_capacity(len);
            let mut r = std::io::BufReader::new(file);
            r.read_to_end(&mut bytes)?;
            Ok(ArenaBytes::copy_from_slice(&bytes))
        }
    }

    /// The full region.
    pub fn bytes(&self) -> &[u8] {
        match &self.data {
            ArenaData::Owned(b) => b.as_bytes(),
            #[cfg(unix)]
            // SAFETY: the mapping is alive (owned by self) and `len` bytes
            // long.
            ArenaData::Mapped(m) => unsafe { std::slice::from_raw_parts(m.ptr, m.len) },
        }
    }

    /// Whether the region is a file mapping (as opposed to an owned
    /// buffer) — surfaced in diagnostics.
    pub fn is_mapped(&self) -> bool {
        match &self.data {
            ArenaData::Owned(_) => false,
            #[cfg(unix)]
            ArenaData::Mapped(_) => true,
        }
    }
}

// SAFETY: both variants return the same pointer/length for life: the
// aligned buffer is never touched after construction, the mapping is
// fixed until munmap in Drop.
unsafe impl StableBytes for ArenaBytes {
    fn stable_bytes(&self) -> &[u8] {
        self.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn owned_buffer_is_aligned_and_round_trips() {
        for len in [0usize, 1, 63, 64, 65, 1000] {
            let src: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            let arena = ArenaBytes::copy_from_slice(&src);
            assert_eq!(arena.bytes(), &src[..]);
            assert!(!arena.is_mapped());
            if len > 0 {
                assert_eq!(arena.bytes().as_ptr() as usize % ARENA_ALIGN, 0);
            }
        }
    }

    #[test]
    fn mapped_file_matches_its_contents() {
        let dir = std::env::temp_dir().join("gsr_store_arena_mmap");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("arena.bin");
        let src: Vec<u8> = (0..100_000u32).flat_map(|x| x.to_le_bytes()).collect();
        std::fs::write(&path, &src).unwrap();
        let arena = ArenaBytes::from_file(&std::fs::File::open(&path).unwrap()).unwrap();
        assert_eq!(arena.bytes(), &src[..]);
        #[cfg(unix)]
        assert!(arena.is_mapped());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_owned_region() {
        let dir = std::env::temp_dir().join("gsr_store_arena_empty");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let arena = ArenaBytes::from_file(&std::fs::File::open(&path).unwrap()).unwrap();
        assert!(arena.bytes().is_empty());
        assert!(!arena.is_mapped());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn columns_keep_the_arena_alive() {
        let values: Vec<u64> = (0..1000).collect();
        let arena = Arc::new(ArenaBytes::copy_from_slice(gsr_graph::bytes_of(&values[..])));
        let col: gsr_graph::Col<u64> = gsr_graph::Col::view(&arena, 0, 1000).unwrap();
        drop(arena);
        assert_eq!(col[999], 999);
        assert!(col.is_mapped());
    }
}
