//! Encoders/decoders for the structures the six methods are made of.
//!
//! Encoding walks the public `parts()` decompositions; decoding rebuilds
//! through the matching validated `from_parts` constructors, so a decoded
//! value is structurally identical to the saved one (bit-identical query
//! answers and [`gsr_core::QueryCost`] counters) and a corrupt one is an
//! `Err(String)`, never a panic. Geometry is decoded through struct
//! literals — not the `new` constructors, whose `debug_assert`s would turn
//! adversarial (checksum-forged) coordinates into debug-build panics.

use crate::wire::{Dec, Enc};
use gsr_core::methods::SpaInfoParts;
use gsr_geo::{Aabb, Point, Rect};
use gsr_graph::DiGraph;
use gsr_index::grid::CellId;
use gsr_index::{RTree, RTreeParams, RTreeSnapshot};
use gsr_reach::bfl::BflIndex;
use gsr_reach::compact::CompactLabels;
use gsr_reach::interval::{Interval, IntervalLabeling};

/// Encodes a point list (count + x/y pairs).
pub fn enc_points(e: &mut Enc, pts: &[Point]) {
    e.u64(pts.len() as u64);
    for p in pts {
        e.f64(p.x);
        e.f64(p.y);
    }
}

/// Decodes a point list.
pub fn dec_points(d: &mut Dec, what: &str) -> Result<Vec<Point>, String> {
    let n = d.count(16, what)?;
    let mut pts = Vec::with_capacity(n);
    for _ in 0..n {
        let x = d.f64(what)?;
        let y = d.f64(what)?;
        pts.push(Point { x, y });
    }
    Ok(pts)
}

/// Encodes a rectangle as four `f64` extrema.
pub fn enc_rect(e: &mut Enc, r: &Rect) {
    e.f64(r.min_x);
    e.f64(r.min_y);
    e.f64(r.max_x);
    e.f64(r.max_y);
}

/// Decodes a rectangle.
pub fn dec_rect(d: &mut Dec, what: &str) -> Result<Rect, String> {
    let min_x = d.f64(what)?;
    let min_y = d.f64(what)?;
    let max_x = d.f64(what)?;
    let max_y = d.f64(what)?;
    Ok(Rect { min_x, min_y, max_x, max_y })
}

/// Encodes a GeoReach SPA-info table (count + tagged entries). Shared by
/// the v2 section payload and the v3 `SPA_INFO` section, which carry the
/// identical byte layout.
pub fn enc_spa_info(e: &mut Enc, info: &[SpaInfoParts]) {
    e.u64(info.len() as u64);
    for i in info {
        match i {
            SpaInfoParts::B(false) => e.u8(0),
            SpaInfoParts::B(true) => e.u8(1),
            SpaInfoParts::R(r) => {
                e.u8(2);
                enc_rect(e, r);
            }
            SpaInfoParts::G(cells) => {
                e.u8(3);
                e.u64(cells.len() as u64);
                for c in cells {
                    enc_cell(e, c);
                }
            }
        }
    }
}

/// Decodes a GeoReach SPA-info table.
pub fn dec_spa_info(d: &mut Dec, what: &str) -> Result<Vec<SpaInfoParts>, String> {
    let n = d.count(1, what)?;
    let mut info = Vec::with_capacity(n);
    for _ in 0..n {
        let kind = d.u8(what)?;
        info.push(match kind {
            0 => SpaInfoParts::B(false),
            1 => SpaInfoParts::B(true),
            2 => SpaInfoParts::R(dec_rect(d, what)?),
            3 => {
                let c = d.count(9, what)?;
                let mut cells = Vec::with_capacity(c);
                for _ in 0..c {
                    cells.push(dec_cell(d, what)?);
                }
                SpaInfoParts::G(cells)
            }
            k => return Err(format!("unknown {what} kind {k}")),
        });
    }
    Ok(info)
}

fn enc_aabb<const N: usize>(e: &mut Enc, b: &Aabb<N>) {
    for d in 0..N {
        e.f64(b.min[d]);
    }
    for d in 0..N {
        e.f64(b.max[d]);
    }
}

fn dec_aabb<const N: usize>(d: &mut Dec, what: &str) -> Result<Aabb<N>, String> {
    let mut min = [0.0; N];
    let mut max = [0.0; N];
    for m in min.iter_mut() {
        *m = d.f64(what)?;
    }
    for m in max.iter_mut() {
        *m = d.f64(what)?;
    }
    Ok(Aabb { min, max })
}

/// Encodes a graph as its forward CSR (offsets + targets); the reverse
/// adjacency is rebuilt deterministically on load.
pub fn enc_digraph(e: &mut Enc, g: &DiGraph) {
    let (offsets, targets) = g.out_csr();
    e.vec_u32(offsets);
    e.vec_u32(targets);
}

/// Decodes and revalidates a graph.
pub fn dec_digraph(d: &mut Dec, what: &str) -> Result<DiGraph, String> {
    let offsets = d.vec_u32(what)?;
    let targets = d.vec_u32(what)?;
    DiGraph::from_out_csr(offsets, targets)
}

/// Encodes an interval labeling (post permutation, its inverse, label CSR).
pub fn enc_labeling(e: &mut Enc, l: &IntervalLabeling) {
    let (post, post_to_vertex, offsets, labels) = l.parts();
    e.vec_u32(post);
    e.vec_u32(post_to_vertex);
    e.vec_u32(offsets);
    e.u64(labels.len() as u64);
    for iv in labels {
        e.u32(iv.lo);
        e.u32(iv.hi);
    }
}

/// Decodes and revalidates an interval labeling.
pub fn dec_labeling(d: &mut Dec, what: &str) -> Result<IntervalLabeling, String> {
    let post = d.vec_u32(what)?;
    let post_to_vertex = d.vec_u32(what)?;
    let offsets = d.vec_u32(what)?;
    let n = d.count(8, what)?;
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let lo = d.u32(what)?;
        let hi = d.u32(what)?;
        labels.push(Interval { lo, hi });
    }
    IntervalLabeling::from_parts(post, post_to_vertex, offsets, labels)
}

/// Encodes a BFL index (condensation graph, post/tree-min arrays, filter
/// words).
pub fn enc_bfl(e: &mut Enc, b: &BflIndex) {
    let (g, post, tree_min, out_filters, in_filters, words) = b.parts();
    enc_digraph(e, g);
    e.vec_u32(post);
    e.vec_u32(tree_min);
    e.vec_u64(out_filters);
    e.vec_u64(in_filters);
    e.u64(words as u64);
}

/// Decodes and revalidates a BFL index.
pub fn dec_bfl(d: &mut Dec, what: &str) -> Result<BflIndex, String> {
    let g = dec_digraph(d, what)?;
    let post = d.vec_u32(what)?;
    let tree_min = d.vec_u32(what)?;
    let out_filters = d.vec_u64(what)?;
    let in_filters = d.vec_u64(what)?;
    let words = d.u64(what)?;
    let words = usize::try_from(words).map_err(|_| format!("{what}: filter width overflows"))?;
    BflIndex::from_parts(g, post, tree_min, out_filters, in_filters, words)
}

/// Encodes an R-tree arena verbatim — parameters, breadth-first node MBRs,
/// the child CSR and the columnar entry store (with degenerate dimensions
/// marked absent, not re-materialized) — so a reload reproduces the exact
/// traversal order and query costs of the saved tree.
pub fn enc_rtree<const N: usize>(e: &mut Enc, t: &RTree<N, u32>) {
    let snap = t.to_snapshot();
    e.u64(snap.params.max_entries as u64);
    e.u64(snap.params.min_entries as u64);
    e.u64(snap.mbrs.len() as u64);
    for b in &snap.mbrs {
        enc_aabb(e, b);
    }
    e.vec_u32(&snap.child_start);
    e.vec_u32(&snap.children);
    e.vec_u32(&snap.entry_start);
    for col in &snap.entry_lo {
        e.vec_f64(col);
    }
    for col in &snap.entry_hi {
        match col {
            None => e.u8(0),
            Some(hi) => {
                e.u8(1);
                e.vec_f64(hi);
            }
        }
    }
    e.vec_u32(&snap.values);
}

/// Decodes and revalidates an R-tree arena.
pub fn dec_rtree<const N: usize>(d: &mut Dec, what: &str) -> Result<RTree<N, u32>, String> {
    let max_entries = d.u64(what)?;
    let min_entries = d.u64(what)?;
    let params = RTreeParams {
        max_entries: usize::try_from(max_entries)
            .map_err(|_| format!("{what}: max_entries overflows"))?,
        min_entries: usize::try_from(min_entries)
            .map_err(|_| format!("{what}: min_entries overflows"))?,
    };
    let node_count = d.count(N * 16, what)?;
    let mut mbrs = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        mbrs.push(dec_aabb::<N>(d, what)?);
    }
    let child_start = d.vec_u32(what)?;
    let children = d.vec_u32(what)?;
    let entry_start = d.vec_u32(what)?;
    let mut entry_lo: [Vec<f64>; N] = std::array::from_fn(|_| Vec::new());
    for col in entry_lo.iter_mut() {
        *col = d.vec_f64(what)?;
    }
    let mut entry_hi: [Option<Vec<f64>>; N] = std::array::from_fn(|_| None);
    for col in entry_hi.iter_mut() {
        match d.u8(what)? {
            0 => {}
            1 => *col = Some(d.vec_f64(what)?),
            k => return Err(format!("{what}: unknown hi-column flag {k}")),
        }
    }
    let values = d.vec_u32(what)?;
    RTree::from_snapshot(RTreeSnapshot {
        params,
        mbrs,
        child_start,
        children,
        entry_start,
        entry_lo,
        entry_hi,
        values,
    })
}

/// Encodes delta-compressed interval labels (post bound, stream CSR, raw
/// varint streams).
pub fn enc_compact_labels(e: &mut Enc, l: &CompactLabels) {
    let (max_post, offsets, bytes) = l.parts();
    e.u32(max_post);
    e.vec_u32(offsets);
    e.vec_u8(bytes);
}

/// Decodes and revalidates delta-compressed interval labels: every
/// per-vertex varint stream must decode to sorted, disjoint intervals
/// inside the declared post range.
pub fn dec_compact_labels(d: &mut Dec, what: &str) -> Result<CompactLabels, String> {
    let max_post = d.u32(what)?;
    let offsets = d.vec_u32(what)?;
    let bytes = d.vec_u8(what)?;
    CompactLabels::from_parts(max_post, offsets, bytes).map_err(|e| format!("{what}: {e}"))
}

/// Encodes a grid cell id.
pub fn enc_cell(e: &mut Enc, c: &CellId) {
    e.u8(c.level);
    e.u32(c.ix);
    e.u32(c.iy);
}

/// Decodes a grid cell id.
pub fn dec_cell(d: &mut Dec, what: &str) -> Result<CellId, String> {
    let level = d.u8(what)?;
    let ix = d.u32(what)?;
    let iy = d.u32(what)?;
    Ok(CellId { level, ix, iy })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsr_graph::GraphBuilder;

    fn sample_graph() -> DiGraph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(2, 3);
        b.build()
    }

    #[test]
    fn digraph_round_trip() {
        let g = sample_graph();
        let mut e = Enc::new();
        enc_digraph(&mut e, &g);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back = dec_digraph(&mut d, "g").unwrap();
        d.finish("g").unwrap();
        assert_eq!(back.out_csr(), g.out_csr());
        for v in g.vertices() {
            assert_eq!(back.in_neighbors(v), g.in_neighbors(v));
        }
    }

    #[test]
    fn rtree_round_trip_bit_identical() {
        let entries: Vec<(Aabb<2>, u32)> = (0..500)
            .map(|i| (Aabb::from_point([i as f64, (i * 7 % 100) as f64]), i))
            .collect();
        let t = RTree::bulk_load(entries);
        let mut e = Enc::new();
        enc_rtree(&mut e, &t);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back: RTree<2, u32> = dec_rtree(&mut d, "t").unwrap();
        d.finish("t").unwrap();
        assert_eq!(back, t, "arena layout must survive the round trip exactly");
    }

    #[test]
    fn rtree_3d_with_degenerate_columns_round_trips() {
        // Point entries: every dimension is degenerate, so all three hi
        // columns are absent on the wire and must come back absent.
        let entries: Vec<(Aabb<3>, u32)> = (0..300)
            .map(|i| (Aabb::from_point([i as f64, (i % 13) as f64, (i % 7) as f64]), i))
            .collect();
        let t = RTree::bulk_load(entries);
        let mut e = Enc::new();
        enc_rtree(&mut e, &t);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back: RTree<3, u32> = dec_rtree(&mut d, "t").unwrap();
        d.finish("t").unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn compact_labels_round_trip_and_reject_corruption() {
        let g = sample_graph();
        let c = CompactLabels::from_labeling(&IntervalLabeling::build(&g));
        let mut e = Enc::new();
        enc_compact_labels(&mut e, &c);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back = dec_compact_labels(&mut d, "labels").unwrap();
        d.finish("labels").unwrap();
        assert_eq!(back, c);
        // Flipping a stream byte must fail validation, not panic.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x80;
        let mut d = Dec::new(&bad);
        assert!(dec_compact_labels(&mut d, "labels").is_err());
    }

    #[test]
    fn truncated_payload_is_an_error() {
        let g = sample_graph();
        let mut e = Enc::new();
        enc_digraph(&mut e, &g);
        let bytes = e.into_bytes();
        for cut in [0, 1, 8, bytes.len() - 1] {
            let mut d = Dec::new(&bytes[..cut]);
            assert!(dec_digraph(&mut d, "g").is_err(), "cut at {cut} must fail");
        }
    }
}
