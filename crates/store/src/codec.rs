//! Encoders/decoders for the structures the six methods are made of.
//!
//! Encoding walks the public `parts()` decompositions; decoding rebuilds
//! through the matching validated `from_parts` constructors, so a decoded
//! value is structurally identical to the saved one (bit-identical query
//! answers and [`gsr_core::QueryCost`] counters) and a corrupt one is an
//! `Err(String)`, never a panic. Geometry is decoded through struct
//! literals — not the `new` constructors, whose `debug_assert`s would turn
//! adversarial (checksum-forged) coordinates into debug-build panics.

use crate::wire::{Dec, Enc};
use gsr_geo::{Aabb, Point, Rect};
use gsr_graph::DiGraph;
use gsr_index::grid::CellId;
use gsr_index::{RTree, RTreeNode, RTreeParams};
use gsr_reach::bfl::BflIndex;
use gsr_reach::interval::{Interval, IntervalLabeling};

/// Encodes a point list (count + x/y pairs).
pub fn enc_points(e: &mut Enc, pts: &[Point]) {
    e.u64(pts.len() as u64);
    for p in pts {
        e.f64(p.x);
        e.f64(p.y);
    }
}

/// Decodes a point list.
pub fn dec_points(d: &mut Dec, what: &str) -> Result<Vec<Point>, String> {
    let n = d.count(16, what)?;
    let mut pts = Vec::with_capacity(n);
    for _ in 0..n {
        let x = d.f64(what)?;
        let y = d.f64(what)?;
        pts.push(Point { x, y });
    }
    Ok(pts)
}

/// Encodes a rectangle as four `f64` extrema.
pub fn enc_rect(e: &mut Enc, r: &Rect) {
    e.f64(r.min_x);
    e.f64(r.min_y);
    e.f64(r.max_x);
    e.f64(r.max_y);
}

/// Decodes a rectangle.
pub fn dec_rect(d: &mut Dec, what: &str) -> Result<Rect, String> {
    let min_x = d.f64(what)?;
    let min_y = d.f64(what)?;
    let max_x = d.f64(what)?;
    let max_y = d.f64(what)?;
    Ok(Rect { min_x, min_y, max_x, max_y })
}

fn enc_aabb<const N: usize>(e: &mut Enc, b: &Aabb<N>) {
    for d in 0..N {
        e.f64(b.min[d]);
    }
    for d in 0..N {
        e.f64(b.max[d]);
    }
}

fn dec_aabb<const N: usize>(d: &mut Dec, what: &str) -> Result<Aabb<N>, String> {
    let mut min = [0.0; N];
    let mut max = [0.0; N];
    for m in min.iter_mut() {
        *m = d.f64(what)?;
    }
    for m in max.iter_mut() {
        *m = d.f64(what)?;
    }
    Ok(Aabb { min, max })
}

/// Encodes a graph as its forward CSR (offsets + targets); the reverse
/// adjacency is rebuilt deterministically on load.
pub fn enc_digraph(e: &mut Enc, g: &DiGraph) {
    let (offsets, targets) = g.out_csr();
    e.vec_u32(offsets);
    e.vec_u32(targets);
}

/// Decodes and revalidates a graph.
pub fn dec_digraph(d: &mut Dec, what: &str) -> Result<DiGraph, String> {
    let offsets = d.vec_u32(what)?;
    let targets = d.vec_u32(what)?;
    DiGraph::from_out_csr(offsets, targets)
}

/// Encodes an interval labeling (post permutation, its inverse, label CSR).
pub fn enc_labeling(e: &mut Enc, l: &IntervalLabeling) {
    let (post, post_to_vertex, offsets, labels) = l.parts();
    e.vec_u32(post);
    e.vec_u32(post_to_vertex);
    e.vec_u32(offsets);
    e.u64(labels.len() as u64);
    for iv in labels {
        e.u32(iv.lo);
        e.u32(iv.hi);
    }
}

/// Decodes and revalidates an interval labeling.
pub fn dec_labeling(d: &mut Dec, what: &str) -> Result<IntervalLabeling, String> {
    let post = d.vec_u32(what)?;
    let post_to_vertex = d.vec_u32(what)?;
    let offsets = d.vec_u32(what)?;
    let n = d.count(8, what)?;
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let lo = d.u32(what)?;
        let hi = d.u32(what)?;
        labels.push(Interval { lo, hi });
    }
    IntervalLabeling::from_parts(post, post_to_vertex, offsets, labels)
}

/// Encodes a BFL index (condensation graph, post/tree-min arrays, filter
/// words).
pub fn enc_bfl(e: &mut Enc, b: &BflIndex) {
    let (g, post, tree_min, out_filters, in_filters, words) = b.parts();
    enc_digraph(e, g);
    e.vec_u32(post);
    e.vec_u32(tree_min);
    e.vec_u64(out_filters);
    e.vec_u64(in_filters);
    e.u64(words as u64);
}

/// Decodes and revalidates a BFL index.
pub fn dec_bfl(d: &mut Dec, what: &str) -> Result<BflIndex, String> {
    let g = dec_digraph(d, what)?;
    let post = d.vec_u32(what)?;
    let tree_min = d.vec_u32(what)?;
    let out_filters = d.vec_u64(what)?;
    let in_filters = d.vec_u64(what)?;
    let words = d.u64(what)?;
    let words = usize::try_from(words).map_err(|_| format!("{what}: filter width overflows"))?;
    BflIndex::from_parts(g, post, tree_min, out_filters, in_filters, words)
}

/// Encodes an R-tree arena verbatim (parameters, root id, entry count,
/// nodes in storage order), so a reload reproduces the exact traversal
/// order and query costs of the saved tree.
pub fn enc_rtree<const N: usize>(e: &mut Enc, t: &RTree<N, u32>) {
    let params = t.params();
    e.u64(params.max_entries as u64);
    e.u64(params.min_entries as u64);
    e.u32(t.root_id());
    e.u64(t.len() as u64);
    let nodes = t.snapshot_nodes();
    e.u64(nodes.len() as u64);
    for node in &nodes {
        match node {
            RTreeNode::Leaf { mbr, entries } => {
                e.u8(0);
                enc_aabb(e, mbr);
                e.u64(entries.len() as u64);
                for (b, payload) in entries {
                    enc_aabb(e, b);
                    e.u32(*payload);
                }
            }
            RTreeNode::Inner { mbr, children } => {
                e.u8(1);
                enc_aabb(e, mbr);
                e.u64(children.len() as u64);
                for &c in children {
                    e.u32(c);
                }
            }
        }
    }
}

/// Decodes and revalidates an R-tree arena.
pub fn dec_rtree<const N: usize>(d: &mut Dec, what: &str) -> Result<RTree<N, u32>, String> {
    let max_entries = d.u64(what)?;
    let min_entries = d.u64(what)?;
    let params = RTreeParams {
        max_entries: usize::try_from(max_entries)
            .map_err(|_| format!("{what}: max_entries overflows"))?,
        min_entries: usize::try_from(min_entries)
            .map_err(|_| format!("{what}: min_entries overflows"))?,
    };
    let root = d.u32(what)?;
    let len = d.u64(what)?;
    let len = usize::try_from(len).map_err(|_| format!("{what}: entry count overflows"))?;
    let node_count = d.count(1, what)?;
    let mut nodes = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        let kind = d.u8(what)?;
        let mbr = dec_aabb::<N>(d, what)?;
        match kind {
            0 => {
                let n = d.count(N * 16 + 4, what)?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let b = dec_aabb::<N>(d, what)?;
                    let payload = d.u32(what)?;
                    entries.push((b, payload));
                }
                nodes.push(RTreeNode::Leaf { mbr, entries });
            }
            1 => {
                let n = d.count(4, what)?;
                let mut children = Vec::with_capacity(n);
                for _ in 0..n {
                    children.push(d.u32(what)?);
                }
                nodes.push(RTreeNode::Inner { mbr, children });
            }
            k => return Err(format!("{what}: unknown r-tree node kind {k}")),
        }
    }
    RTree::from_snapshot(params, root, len, nodes)
}

/// Encodes a grid cell id.
pub fn enc_cell(e: &mut Enc, c: &CellId) {
    e.u8(c.level);
    e.u32(c.ix);
    e.u32(c.iy);
}

/// Decodes a grid cell id.
pub fn dec_cell(d: &mut Dec, what: &str) -> Result<CellId, String> {
    let level = d.u8(what)?;
    let ix = d.u32(what)?;
    let iy = d.u32(what)?;
    Ok(CellId { level, ix, iy })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsr_graph::GraphBuilder;

    fn sample_graph() -> DiGraph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(2, 3);
        b.build()
    }

    #[test]
    fn digraph_round_trip() {
        let g = sample_graph();
        let mut e = Enc::new();
        enc_digraph(&mut e, &g);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back = dec_digraph(&mut d, "g").unwrap();
        d.finish("g").unwrap();
        assert_eq!(back.out_csr(), g.out_csr());
        for v in g.vertices() {
            assert_eq!(back.in_neighbors(v), g.in_neighbors(v));
        }
    }

    #[test]
    fn rtree_round_trip_bit_identical() {
        let entries: Vec<(Aabb<2>, u32)> = (0..500)
            .map(|i| (Aabb::from_point([i as f64, (i * 7 % 100) as f64]), i))
            .collect();
        let t = RTree::bulk_load(entries);
        let mut e = Enc::new();
        enc_rtree(&mut e, &t);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back: RTree<2, u32> = dec_rtree(&mut d, "t").unwrap();
        d.finish("t").unwrap();
        assert_eq!(back, t, "arena layout must survive the round trip exactly");
    }

    #[test]
    fn truncated_payload_is_an_error() {
        let g = sample_graph();
        let mut e = Enc::new();
        enc_digraph(&mut e, &g);
        let bytes = e.into_bytes();
        for cut in [0, 1, 8, bytes.len() - 1] {
            let mut d = Dec::new(&bytes[..cut]);
            assert!(dec_digraph(&mut d, "g").is_err(), "cut at {cut} must fail");
        }
    }
}
