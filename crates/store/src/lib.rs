//! # gsr-store: versioned, checksummed index snapshots
//!
//! Building a `RangeReach` index over a large geosocial network is the
//! expensive part of the pipeline — SCC condensation, labeling
//! construction, R-tree packing. This crate persists a *built* index of any
//! of the paper's six methods to a compact binary snapshot and loads it
//! back **bit-identically**: the reloaded index returns the same answers
//! *and* the same [`gsr_core::QueryCost`] counters as the one that was
//! saved, because the encoding captures the exact arena layouts rather
//! than re-deriving them.
//!
//! ## Wire format
//!
//! The current format (v3) is **zero-copy**: after the magic and version,
//! a directory of tagged, CRC-32-checksummed entries describes sections
//! laid out at 64-byte-aligned offsets, and each section is a fixed-width
//! little-endian column image of the corresponding index arena (see
//! `v3` and the layout tables in `DESIGN.md`). Loading memory-maps the
//! file (or copies it once into an aligned buffer) and serves queries
//! from typed views into the mapped region — no per-element decode.
//! [`save_v2`] still writes, and [`load`] still reads, the v2 streaming
//! format (framed `tag | len | payload | crc` sections) for
//! interoperability with older snapshots.
//!
//! ## Trust model
//!
//! A snapshot is *untrusted input*: loading revalidates every structural
//! invariant a query dereferences (CSR monotonicity, permutations,
//! component-id bounds, R-tree arena reachability) through the owning
//! crates' `from_parts`/`from_cols` constructors. Corruption, truncation,
//! version mismatches and impossible structures all surface as
//! [`GsrError::Load`] — never a panic, never an unbounded allocation.
//! [`LoadOptions::trust`] skips only the CRC pass over the section
//! payloads (for snapshots on trusted local disks); the structural
//! validation always runs.
//!
//! ```
//! use gsr_core::{paper_example, RangeReachIndex, SccSpatialPolicy};
//! use gsr_core::methods::ThreeDReach;
//! use gsr_store::SnapshotIndex;
//!
//! let prep = paper_example::prepared();
//! let built = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
//! let mut bytes = Vec::new();
//! gsr_store::save(&mut bytes, &SnapshotIndex::ThreeDReach(built)).unwrap();
//!
//! let loaded = gsr_store::load(&mut bytes.as_slice()).unwrap();
//! assert_eq!(loaded.name(), "3DReach");
//! assert!(loaded.query(paper_example::A, &paper_example::query_region()));
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod codec;
pub mod shard;
mod v3;
mod wire;

pub use arena::ArenaBytes;

use gsr_core::methods::{
    GeoReach, GeoReachParts, ScanMode, SocReach, SpaReachBfl, SpaReachFilterParts,
    SpaReachInt, SpaReachParts, ThreeDParts, ThreeDReach, ThreeDReachRev, ThreeDRevParts,
};
use gsr_core::{GsrError, QueryCost, RangeReachIndex, SccSpatialPolicy};
use gsr_geo::Rect;
use gsr_graph::VertexId;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

use codec::*;
use wire::{read_section, write_section, Dec, Enc};

/// First eight bytes of every snapshot.
pub const MAGIC: [u8; 8] = *b"GSRSNAP\0";

/// Current snapshot format version. Bump on any incompatible layout
/// change; loaders reject other versions with a typed error instead of
/// misinterpreting bytes.
///
/// Version history:
/// * **1** — pointer-node R-tree arenas, interval labels as plain arrays
///   everywhere.
/// * **2** — columnar breadth-first R-tree arenas (degenerate dimensions
///   elided), delta-compressed labels for SocReach/3DReach, and raw
///   reversed post-order heights for 3DReach-REV. Still readable by
///   [`load`] and writable via [`save_v2`].
/// * **3** — zero-copy section layout: a checksummed directory followed by
///   the raw arena columns at 64-byte-aligned offsets, loadable by
///   memory-mapping the file with no deserialization.
pub const FORMAT_VERSION: u32 = 3;

/// The previous streaming format version, retained as a decode fallback
/// (and for writers that must interoperate with older readers).
pub const FORMAT_VERSION_V2: u32 = 2;

/// Section tags (see `DESIGN.md` for the per-method section sequences).
mod section {
    pub const META: u8 = 0x01;
    pub const COMP_OF: u8 = 0x02;
    pub const MEMBERS: u8 = 0x03;
    pub const LABELING: u8 = 0x04;
    pub const COMPACT_LABELS: u8 = 0x05;
    pub const FILTER2D: u8 = 0x10;
    pub const BFL: u8 = 0x11;
    pub const DAG: u8 = 0x20;
    pub const GRID: u8 = 0x21;
    pub const SPA_INFO: u8 = 0x22;
    pub const POST_TABLE: u8 = 0x30;
    pub const REV_POST: u8 = 0x31;
    pub const TREE3D: u8 = 0x40;
}

/// Method tags stored in the META section.
mod method_tag {
    pub const SPAREACH_BFL: u8 = 1;
    pub const SPAREACH_INT: u8 = 2;
    pub const GEOREACH: u8 = 3;
    pub const SOCREACH: u8 = 4;
    pub const THREED: u8 = 5;
    pub const THREED_REV: u8 = 6;
}

/// A built index of any of the six methods, as saved to / loaded from a
/// snapshot. Implements [`RangeReachIndex`] by delegation, so a loaded
/// snapshot drops into every consumer of the trait (the batch executor,
/// the query server) without knowing which method it holds.
#[derive(Debug, Clone)]
pub enum SnapshotIndex {
    /// SpaReach with the BFL reachability back-end.
    SpaReachBfl(SpaReachBfl),
    /// SpaReach with the interval-labeling back-end.
    SpaReachInt(SpaReachInt),
    /// The GeoReach SPA-graph.
    GeoReach(GeoReach),
    /// The social-first SocReach evaluator.
    SocReach(SocReach),
    /// The forward 3-D transformation.
    ThreeDReach(ThreeDReach),
    /// The reversed (segment-based) 3-D transformation.
    ThreeDReachRev(ThreeDReachRev),
}

impl SnapshotIndex {
    /// The CLI method key of the held index (e.g. `"3dreach-rev"`).
    pub fn method_key(&self) -> &'static str {
        match self {
            SnapshotIndex::SpaReachBfl(_) => "spareach-bfl",
            SnapshotIndex::SpaReachInt(_) => "spareach-int",
            SnapshotIndex::GeoReach(_) => "georeach",
            SnapshotIndex::SocReach(_) => "socreach",
            SnapshotIndex::ThreeDReach(_) => "3dreach",
            SnapshotIndex::ThreeDReachRev(_) => "3dreach-rev",
        }
    }

    fn as_index(&self) -> &dyn RangeReachIndex {
        match self {
            SnapshotIndex::SpaReachBfl(i) => i,
            SnapshotIndex::SpaReachInt(i) => i,
            SnapshotIndex::GeoReach(i) => i,
            SnapshotIndex::SocReach(i) => i,
            SnapshotIndex::ThreeDReach(i) => i,
            SnapshotIndex::ThreeDReachRev(i) => i,
        }
    }
}

impl RangeReachIndex for SnapshotIndex {
    fn num_vertices(&self) -> usize {
        self.as_index().num_vertices()
    }

    fn query_unchecked(&self, v: VertexId, region: &Rect) -> bool {
        self.as_index().query_unchecked(v, region)
    }

    fn query_with_cost_unchecked(&self, v: VertexId, region: &Rect) -> (bool, QueryCost) {
        self.as_index().query_with_cost_unchecked(v, region)
    }

    fn index_bytes(&self) -> usize {
        self.as_index().index_bytes()
    }

    fn name(&self) -> &'static str {
        self.as_index().name()
    }
}

fn io_save(e: std::io::Error) -> GsrError {
    GsrError::Internal(format!("snapshot save: {e}"))
}

fn load_err(msg: String) -> GsrError {
    GsrError::Load(format!("snapshot: {msg}"))
}

// ---------------------------------------------------------------------------
// Section payload builders (shared shapes).

fn members_payload(offsets: &[u32], points: &[gsr_geo::Point]) -> Vec<u8> {
    let mut e = Enc::new();
    e.vec_u32(offsets);
    enc_points(&mut e, points);
    e.into_bytes()
}

fn read_members(r: &mut impl Read) -> Result<(Vec<u32>, Vec<gsr_geo::Point>), GsrError> {
    let payload = read_section(r, section::MEMBERS, "members").map_err(load_err)?;
    let mut d = Dec::new(&payload);
    let offsets = d.vec_u32("members").map_err(load_err)?;
    let points = dec_points(&mut d, "members").map_err(load_err)?;
    d.finish("members").map_err(load_err)?;
    Ok((offsets, points))
}

fn comp_of_payload(comp_of: &[u32]) -> Vec<u8> {
    let mut e = Enc::new();
    e.vec_u32(comp_of);
    e.into_bytes()
}

fn read_comp_of(r: &mut impl Read) -> Result<Vec<u32>, GsrError> {
    let payload = read_section(r, section::COMP_OF, "comp-of").map_err(load_err)?;
    let mut d = Dec::new(&payload);
    let comp_of = d.vec_u32("comp-of").map_err(load_err)?;
    d.finish("comp-of").map_err(load_err)?;
    Ok(comp_of)
}

fn read_labeling(r: &mut impl Read) -> Result<gsr_reach::interval::IntervalLabeling, GsrError> {
    let payload = read_section(r, section::LABELING, "labeling").map_err(load_err)?;
    let mut d = Dec::new(&payload);
    let l = dec_labeling(&mut d, "labeling").map_err(load_err)?;
    d.finish("labeling").map_err(load_err)?;
    Ok(l)
}

fn compact_labels_payload(l: &gsr_reach::compact::CompactLabels) -> Vec<u8> {
    let mut e = Enc::new();
    enc_compact_labels(&mut e, l);
    e.into_bytes()
}

fn read_compact_labels(r: &mut impl Read) -> Result<gsr_reach::compact::CompactLabels, GsrError> {
    let payload = read_section(r, section::COMPACT_LABELS, "compact-labels").map_err(load_err)?;
    let mut d = Dec::new(&payload);
    let l = dec_compact_labels(&mut d, "compact-labels").map_err(load_err)?;
    d.finish("compact-labels").map_err(load_err)?;
    Ok(l)
}

// ---------------------------------------------------------------------------
// Save.

/// Serializes a built index to `w` in the current (v3, zero-copy)
/// snapshot format: the section payloads are the index's own arena bytes,
/// written directly — no per-element encoding.
///
/// I/O failures are [`GsrError::Internal`]; an index configuration that
/// cannot be persisted (SpaReach with an ablation-only spatial backend or
/// the streaming candidate mode) is rejected the same way.
pub fn save(w: &mut impl Write, index: &SnapshotIndex) -> Result<(), GsrError> {
    v3::save_v3(w, index)
}

/// Serializes a built index in the legacy v2 streaming format. Kept for
/// interoperability (older readers) and for benchmarking the two formats
/// against each other; [`load`] reads both.
pub fn save_v2(w: &mut impl Write, index: &SnapshotIndex) -> Result<(), GsrError> {
    w.write_all(&MAGIC).map_err(io_save)?;
    w.write_all(&FORMAT_VERSION_V2.to_le_bytes()).map_err(io_save)?;

    let (tag, sections): (u8, Vec<(u8, Vec<u8>)>) = match index {
        SnapshotIndex::SpaReachBfl(i) => {
            (method_tag::SPAREACH_BFL, spareach_sections(i.to_parts(), enc_bfl, section::BFL)?)
        }
        SnapshotIndex::SpaReachInt(i) => (
            method_tag::SPAREACH_INT,
            spareach_sections(i.to_parts(), enc_labeling, section::LABELING)?,
        ),
        SnapshotIndex::GeoReach(i) => (method_tag::GEOREACH, georeach_sections(i.to_parts())),
        SnapshotIndex::SocReach(i) => (method_tag::SOCREACH, socreach_sections(i)),
        SnapshotIndex::ThreeDReach(i) => (method_tag::THREED, threed_sections(i.to_parts())),
        SnapshotIndex::ThreeDReachRev(i) => {
            (method_tag::THREED_REV, threed_rev_sections(i.to_parts()))
        }
    };

    write_section(w, section::META, &[tag]).map_err(io_save)?;
    for (stag, payload) in &sections {
        write_section(w, *stag, payload).map_err(io_save)?;
    }
    w.flush().map_err(io_save)
}

fn spareach_sections<R>(
    parts: Option<SpaReachParts<R>>,
    enc_reach: impl Fn(&mut Enc, &R),
    reach_tag: u8,
) -> Result<Vec<(u8, Vec<u8>)>, GsrError> {
    let parts = parts.ok_or_else(|| {
        GsrError::Internal(
            "this SpaReach configuration (ablation backend or streaming mode) cannot be snapshotted"
                .into(),
        )
    })?;
    let mut filter = Enc::new();
    match &parts.filter {
        SpaReachFilterParts::Points(t) => {
            filter.u8(0);
            enc_rtree(&mut filter, t);
        }
        SpaReachFilterParts::CompBoxes(t) => {
            filter.u8(1);
            enc_rtree(&mut filter, t);
        }
    }
    let mut reach = Enc::new();
    enc_reach(&mut reach, &parts.reach);
    Ok(vec![
        (section::COMP_OF, comp_of_payload(&parts.comp_of)),
        (section::FILTER2D, filter.into_bytes()),
        (section::MEMBERS, members_payload(&parts.member_offsets, &parts.member_points)),
        (reach_tag, reach.into_bytes()),
    ])
}

fn georeach_sections(parts: GeoReachParts) -> Vec<(u8, Vec<u8>)> {
    let mut dag = Enc::new();
    enc_digraph(&mut dag, &parts.dag);
    let mut grid = Enc::new();
    enc_rect(&mut grid, &parts.space);
    grid.u8(parts.finest_exp);
    let mut info = Enc::new();
    enc_spa_info(&mut info, &parts.info);
    vec![
        (section::COMP_OF, comp_of_payload(&parts.comp_of)),
        (section::DAG, dag.into_bytes()),
        (section::GRID, grid.into_bytes()),
        (section::SPA_INFO, info.into_bytes()),
        (section::MEMBERS, members_payload(&parts.member_offsets, &parts.member_points)),
    ]
}

fn socreach_sections(i: &SocReach) -> Vec<(u8, Vec<u8>)> {
    let (comp_of, labels, post_offsets, points, mode) = i.parts();
    let mut table = Enc::new();
    // The post offsets travel as the plain sorted values; the loader
    // re-derives (and thereby revalidates) the delta compression.
    table.vec_u32(&post_offsets.to_vec());
    enc_points(&mut table, points);
    table.u8(match mode {
        ScanMode::PerPost => 0,
        ScanMode::Compacted => 1,
    });
    vec![
        (section::COMP_OF, comp_of_payload(comp_of)),
        (section::COMPACT_LABELS, compact_labels_payload(labels)),
        (section::POST_TABLE, table.into_bytes()),
    ]
}

fn tree3d_payload(policy: SccSpatialPolicy, tree: &gsr_index::RTree<3, u32>) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(match policy {
        SccSpatialPolicy::Replicate => 0,
        SccSpatialPolicy::Mbr => 1,
    });
    enc_rtree(&mut e, tree);
    e.into_bytes()
}

fn threed_sections(parts: ThreeDParts) -> Vec<(u8, Vec<u8>)> {
    vec![
        (section::COMP_OF, comp_of_payload(&parts.comp_of)),
        (section::COMPACT_LABELS, compact_labels_payload(&parts.labels)),
        (section::TREE3D, tree3d_payload(parts.policy, &parts.tree)),
        (section::MEMBERS, members_payload(&parts.member_offsets, &parts.member_points)),
    ]
}

fn threed_rev_sections(parts: ThreeDRevParts) -> Vec<(u8, Vec<u8>)> {
    let mut rev = Enc::new();
    rev.vec_u32(&parts.rev_post);
    vec![
        (section::COMP_OF, comp_of_payload(&parts.comp_of)),
        (section::REV_POST, rev.into_bytes()),
        (section::TREE3D, tree3d_payload(parts.policy, &parts.tree)),
        (section::MEMBERS, members_payload(&parts.member_offsets, &parts.member_points)),
    ]
}

// ---------------------------------------------------------------------------
// Load.

/// Options for loading a snapshot.
#[derive(Clone, Copy, Debug, Default)]
pub struct LoadOptions {
    /// Skip the CRC-32 verification pass over v3 section payloads. Only
    /// for snapshots on trusted local storage; structural validation (and
    /// therefore memory safety on garbage input) is unaffected. v2 loads
    /// ignore this — their framing verifies CRCs inline.
    pub trust: bool,
}

/// How a snapshot was loaded — surfaced so servers can report their
/// restart cost truthfully.
#[derive(Clone, Copy, Debug)]
pub struct LoadInfo {
    /// Wire-format version of the file (2 or 3).
    pub format: u32,
    /// Whether the snapshot is served from a memory-mapped file (v3 on
    /// unix) rather than a decoded or copied heap buffer.
    pub mapped: bool,
    /// On-disk size of the snapshot file, in bytes.
    pub file_bytes: u64,
}

/// Reads and checks the 12-byte magic + version prefix, returning the
/// version for dispatch (without judging whether it is supported).
fn read_prefix(r: &mut impl Read) -> Result<u32, GsrError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)
        .map_err(|e| load_err(format!("missing magic ({e})")))?;
    if magic != MAGIC {
        return Err(load_err(format!("bad magic {magic:02x?}: not a gsr snapshot")));
    }
    let mut version = [0u8; 4];
    r.read_exact(&mut version)
        .map_err(|e| load_err(format!("missing format version ({e})")))?;
    Ok(u32::from_le_bytes(version))
}

fn unsupported_version(version: u32) -> GsrError {
    load_err(format!(
        "unsupported format version {version} (this build reads versions {FORMAT_VERSION_V2} and {FORMAT_VERSION})"
    ))
}

/// Deserializes a snapshot (v3 or v2, sniffed from the version field),
/// revalidating every structural invariant.
///
/// All failure modes — bad magic, unsupported version, truncation, CRC
/// mismatch, structurally impossible data, trailing bytes — are
/// [`GsrError::Load`] with a diagnostic naming the offending section.
pub fn load(r: &mut impl Read) -> Result<SnapshotIndex, GsrError> {
    load_with(r, LoadOptions::default())
}

/// [`load`] with explicit [`LoadOptions`].
///
/// A v3 stream is read into a fresh 64-byte-aligned buffer in one pass
/// and served from typed views into it — callers with a file path should
/// prefer [`load_from_path`], which memory-maps instead of reading.
pub fn load_with(r: &mut impl Read, opts: LoadOptions) -> Result<SnapshotIndex, GsrError> {
    match read_prefix(r)? {
        FORMAT_VERSION_V2 => load_v2_body(r),
        FORMAT_VERSION => {
            let mut full = Vec::new();
            full.extend_from_slice(&MAGIC);
            full.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
            r.read_to_end(&mut full)
                .map_err(|e| load_err(format!("i/o error reading snapshot: {e}")))?;
            let arena = Arc::new(ArenaBytes::copy_from_slice(&full));
            v3::load_v3(&arena, opts.trust)
        }
        v => Err(unsupported_version(v)),
    }
}

/// The v2 streaming decode: the reader is positioned just past the
/// magic + version prefix.
fn load_v2_body(r: &mut impl Read) -> Result<SnapshotIndex, GsrError> {
    let meta = read_section(r, section::META, "meta").map_err(load_err)?;
    let mut d = Dec::new(&meta);
    let tag = d.u8("meta").map_err(load_err)?;
    d.finish("meta").map_err(load_err)?;

    let index = match tag {
        method_tag::SPAREACH_BFL => load_spareach_bfl(r)?,
        method_tag::SPAREACH_INT => load_spareach_int(r)?,
        method_tag::GEOREACH => load_georeach(r)?,
        method_tag::SOCREACH => load_socreach(r)?,
        method_tag::THREED => SnapshotIndex::ThreeDReach(
            ThreeDReach::from_parts(load_threed_parts(r)?).map_err(load_err)?,
        ),
        method_tag::THREED_REV => SnapshotIndex::ThreeDReachRev(
            ThreeDReachRev::from_parts(load_threed_rev_parts(r)?).map_err(load_err)?,
        ),
        t => return Err(load_err(format!("unknown method tag {t}"))),
    };

    // The format has no trailer: anything after the last section is
    // corruption (e.g. a concatenation accident).
    let mut probe = [0u8; 1];
    match r.read(&mut probe) {
        Ok(0) => Ok(index),
        Ok(_) => Err(load_err("trailing bytes after the final section".into())),
        Err(e) => Err(load_err(format!("i/o error at end of snapshot: {e}"))),
    }
}

fn read_filter2d(r: &mut impl Read) -> Result<SpaReachFilterParts, GsrError> {
    let payload = read_section(r, section::FILTER2D, "spatial-filter").map_err(load_err)?;
    let mut d = Dec::new(&payload);
    let kind = d.u8("spatial-filter").map_err(load_err)?;
    let tree = dec_rtree::<2>(&mut d, "spatial-filter").map_err(load_err)?;
    d.finish("spatial-filter").map_err(load_err)?;
    match kind {
        0 => Ok(SpaReachFilterParts::Points(tree)),
        1 => Ok(SpaReachFilterParts::CompBoxes(tree)),
        k => Err(load_err(format!("unknown spatial-filter kind {k}"))),
    }
}

fn check_backend_coverage(ncomp: usize, backend_n: usize, what: &str) -> Result<(), GsrError> {
    if backend_n != ncomp {
        return Err(load_err(format!(
            "{what} covers {backend_n} components but the spatial side has {ncomp}"
        )));
    }
    Ok(())
}

fn load_spareach_bfl(r: &mut impl Read) -> Result<SnapshotIndex, GsrError> {
    let comp_of = read_comp_of(r)?;
    let filter = read_filter2d(r)?;
    let (member_offsets, member_points) = read_members(r)?;
    let payload = read_section(r, section::BFL, "bfl").map_err(load_err)?;
    let mut d = Dec::new(&payload);
    let reach = dec_bfl(&mut d, "bfl").map_err(load_err)?;
    d.finish("bfl").map_err(load_err)?;

    // `SpaReach::from_parts` bounds-checks component ids against the member
    // CSR; the reachability back-end's own vertex count is our job, because
    // the `Reachability` trait does not expose one.
    let ncomp = member_offsets.len().saturating_sub(1);
    check_backend_coverage(ncomp, reach.parts().0.num_vertices(), "bfl")?;
    let parts = SpaReachParts { comp_of, filter, reach, member_offsets, member_points };
    Ok(SnapshotIndex::SpaReachBfl(
        SpaReachBfl::from_parts(parts, "SpaReach-BFL").map_err(load_err)?,
    ))
}

fn load_spareach_int(r: &mut impl Read) -> Result<SnapshotIndex, GsrError> {
    let comp_of = read_comp_of(r)?;
    let filter = read_filter2d(r)?;
    let (member_offsets, member_points) = read_members(r)?;
    let reach = read_labeling(r)?;

    let ncomp = member_offsets.len().saturating_sub(1);
    check_backend_coverage(ncomp, reach.num_vertices(), "labeling")?;
    let parts = SpaReachParts { comp_of, filter, reach, member_offsets, member_points };
    Ok(SnapshotIndex::SpaReachInt(
        SpaReachInt::from_parts(parts, "SpaReach-INT").map_err(load_err)?,
    ))
}

fn load_georeach(r: &mut impl Read) -> Result<SnapshotIndex, GsrError> {
    let comp_of = read_comp_of(r)?;

    let payload = read_section(r, section::DAG, "dag").map_err(load_err)?;
    let mut d = Dec::new(&payload);
    let dag = dec_digraph(&mut d, "dag").map_err(load_err)?;
    d.finish("dag").map_err(load_err)?;

    let payload = read_section(r, section::GRID, "grid").map_err(load_err)?;
    let mut d = Dec::new(&payload);
    let space = dec_rect(&mut d, "grid").map_err(load_err)?;
    let finest_exp = d.u8("grid").map_err(load_err)?;
    d.finish("grid").map_err(load_err)?;

    let payload = read_section(r, section::SPA_INFO, "spa-info").map_err(load_err)?;
    let mut d = Dec::new(&payload);
    let info = dec_spa_info(&mut d, "spa-info").map_err(load_err)?;
    d.finish("spa-info").map_err(load_err)?;

    let (member_offsets, member_points) = read_members(r)?;
    let parts =
        GeoReachParts { comp_of, dag, space, finest_exp, info, member_offsets, member_points };
    Ok(SnapshotIndex::GeoReach(GeoReach::from_parts(parts).map_err(load_err)?))
}

fn load_socreach(r: &mut impl Read) -> Result<SnapshotIndex, GsrError> {
    let comp_of = read_comp_of(r)?;
    let labels = read_compact_labels(r)?;

    let payload = read_section(r, section::POST_TABLE, "post-table").map_err(load_err)?;
    let mut d = Dec::new(&payload);
    let post_offsets = d.vec_u32("post-table").map_err(load_err)?;
    let points = dec_points(&mut d, "post-table").map_err(load_err)?;
    let mode = match d.u8("post-table").map_err(load_err)? {
        0 => ScanMode::PerPost,
        1 => ScanMode::Compacted,
        k => return Err(load_err(format!("unknown scan mode {k}"))),
    };
    d.finish("post-table").map_err(load_err)?;

    Ok(SnapshotIndex::SocReach(
        SocReach::from_parts(comp_of, labels, post_offsets, points, mode).map_err(load_err)?,
    ))
}

fn read_tree3d(
    r: &mut impl Read,
) -> Result<(SccSpatialPolicy, gsr_index::RTree<3, u32>), GsrError> {
    let payload = read_section(r, section::TREE3D, "tree-3d").map_err(load_err)?;
    let mut d = Dec::new(&payload);
    let policy = match d.u8("tree-3d").map_err(load_err)? {
        0 => SccSpatialPolicy::Replicate,
        1 => SccSpatialPolicy::Mbr,
        k => return Err(load_err(format!("unknown scc policy {k}"))),
    };
    let tree = dec_rtree::<3>(&mut d, "tree-3d").map_err(load_err)?;
    d.finish("tree-3d").map_err(load_err)?;
    Ok((policy, tree))
}

fn load_threed_parts(r: &mut impl Read) -> Result<ThreeDParts, GsrError> {
    let comp_of = read_comp_of(r)?;
    let labels = read_compact_labels(r)?;
    let (policy, tree) = read_tree3d(r)?;
    let (member_offsets, member_points) = read_members(r)?;
    Ok(ThreeDParts { comp_of, labels, tree, policy, member_offsets, member_points })
}

fn load_threed_rev_parts(r: &mut impl Read) -> Result<ThreeDRevParts, GsrError> {
    let comp_of = read_comp_of(r)?;

    let payload = read_section(r, section::REV_POST, "rev-post").map_err(load_err)?;
    let mut d = Dec::new(&payload);
    let rev_post = d.vec_u32("rev-post").map_err(load_err)?;
    d.finish("rev-post").map_err(load_err)?;

    let (policy, tree) = read_tree3d(r)?;
    let (member_offsets, member_points) = read_members(r)?;
    Ok(ThreeDRevParts { comp_of, rev_post, tree, policy, member_offsets, member_points })
}

// ---------------------------------------------------------------------------
// Path helpers.

/// The staging path a [`save_to_path`] writes through before the atomic
/// rename: `<path>.tmp`, always a sibling of the target so the rename
/// never crosses a filesystem boundary. Public so fault-injection
/// harnesses can plant the exact debris a killed save would leave.
pub fn staging_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().map_or_else(std::ffi::OsString::new, |n| n.to_os_string());
    name.push(".tmp");
    path.with_file_name(name)
}

/// Saves a snapshot to a file path, **crash-safely**: the bytes go to the
/// sibling staging file ([`staging_path`]), are flushed and `sync_all`'d
/// to disk, and only then atomically renamed over the target. A process
/// killed at any byte of the save leaves the previous snapshot at `path`
/// intact (plus, at worst, a stale `.tmp` the next successful save
/// replaces) — the target is never truncated in place.
pub fn save_to_path(path: impl AsRef<Path>, index: &SnapshotIndex) -> Result<(), GsrError> {
    let path = path.as_ref();
    let tmp = staging_path(path);
    let save_err =
        |stage: &str, e: std::io::Error| GsrError::Internal(format!("snapshot save {}: {stage}: {e}", path.display()));
    let result = (|| {
        let file = std::fs::File::create(&tmp).map_err(|e| save_err("create staging", e))?;
        let mut w = std::io::BufWriter::new(file);
        save(&mut w, index)?;
        let file = w
            .into_inner()
            .map_err(|e| save_err("flush staging", e.into_error()))?;
        file.sync_all().map_err(|e| save_err("sync staging", e))?;
        std::fs::rename(&tmp, path).map_err(|e| save_err("rename into place", e))
    })();
    if result.is_err() {
        // Best-effort cleanup; a leftover staging file is harmless either
        // way (the next successful save truncates and replaces it).
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Loads a snapshot from a file path. v3 files are memory-mapped and
/// served zero-copy; v2 files take the streaming decode.
pub fn load_from_path(path: impl AsRef<Path>) -> Result<SnapshotIndex, GsrError> {
    load_from_path_with(path, LoadOptions::default()).map(|(index, _)| index)
}

/// [`load_from_path`] with explicit [`LoadOptions`], also reporting how
/// the snapshot was loaded ([`LoadInfo`]).
pub fn load_from_path_with(
    path: impl AsRef<Path>,
    opts: LoadOptions,
) -> Result<(SnapshotIndex, LoadInfo), GsrError> {
    use std::io::Seek;
    let path = path.as_ref();
    let mut file = std::fs::File::open(path)
        .map_err(|e| GsrError::Load(format!("snapshot {}: {e}", path.display())))?;
    let file_bytes =
        file.metadata().map(|m| m.len()).map_err(|e| {
            GsrError::Load(format!("snapshot {}: {e}", path.display()))
        })?;
    match read_prefix(&mut file)? {
        FORMAT_VERSION_V2 => {
            file.rewind()
                .map_err(|e| load_err(format!("i/o error rewinding snapshot: {e}")))?;
            let mut r = std::io::BufReader::new(file);
            let index = load_with(&mut r, opts)?;
            Ok((index, LoadInfo { format: FORMAT_VERSION_V2, mapped: false, file_bytes }))
        }
        FORMAT_VERSION => {
            let arena = ArenaBytes::from_file(&file)
                .map_err(|e| load_err(format!("i/o error mapping snapshot: {e}")))?;
            let mapped = arena.is_mapped();
            let index = v3::load_v3(&Arc::new(arena), opts.trust)?;
            Ok((index, LoadInfo { format: FORMAT_VERSION, mapped, file_bytes }))
        }
        v => Err(unsupported_version(v)),
    }
}

/// Loads a snapshot into an immutable, reference-counted index that can be
/// shared across query worker threads ([`SnapshotIndex`] is `Send + Sync`).
pub fn load_shared(path: impl AsRef<Path>) -> Result<Arc<SnapshotIndex>, GsrError> {
    load_from_path(path).map(Arc::new)
}

/// Loads whatever lives at `path` into a servable index: a directory with
/// a [`shard::SHARD_MANIFEST`] loads as a sharded scatter-gather router
/// ([`gsr_core::ShardedIndex`]), anything else as a plain single-index
/// snapshot. This is the entry point servers route startup loads and
/// `RELOAD` through, so one path argument transparently serves both
/// layouts.
pub fn load_served_index(
    path: impl AsRef<Path>,
    opts: LoadOptions,
) -> Result<(Arc<dyn RangeReachIndex>, LoadInfo), GsrError> {
    let path = path.as_ref();
    if path.is_dir() {
        let (sharded, info) = shard::load_sharded_from_path_with(path, opts)?;
        Ok((Arc::new(sharded), info))
    } else {
        let (index, info) = load_from_path_with(path, opts)?;
        Ok((Arc::new(index), info))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsr_core::paper_example;

    fn built_all() -> Vec<SnapshotIndex> {
        let prep = paper_example::prepared();
        let p = SccSpatialPolicy::Replicate;
        vec![
            SnapshotIndex::SpaReachBfl(SpaReachBfl::build(&prep, p)),
            SnapshotIndex::SpaReachInt(SpaReachInt::build(&prep, p)),
            SnapshotIndex::GeoReach(GeoReach::build(&prep)),
            SnapshotIndex::SocReach(SocReach::build(&prep)),
            SnapshotIndex::ThreeDReach(ThreeDReach::build(&prep, p)),
            SnapshotIndex::ThreeDReachRev(ThreeDReachRev::build(&prep, p)),
        ]
    }

    #[test]
    fn every_method_round_trips_in_memory() {
        let prep = paper_example::prepared();
        for index in built_all() {
            let mut bytes = Vec::new();
            save(&mut bytes, &index).unwrap();
            let loaded = load(&mut bytes.as_slice()).unwrap();
            assert_eq!(loaded.name(), index.name());
            assert_eq!(loaded.method_key(), index.method_key());
            assert_eq!(loaded.num_vertices(), index.num_vertices());
            assert_eq!(loaded.index_bytes(), index.index_bytes());
            for v in prep.network().graph().vertices() {
                for r in paper_example::probe_regions() {
                    assert_eq!(
                        loaded.query_with_cost_unchecked(v, &r),
                        index.query_with_cost_unchecked(v, &r),
                        "{} v={v} r={r}",
                        index.name()
                    );
                }
            }
        }
    }

    #[test]
    fn bad_magic_and_version_are_typed_errors() {
        let mut bytes = Vec::new();
        save(&mut bytes, &built_all().remove(3)).unwrap();

        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        match load(&mut wrong_magic.as_slice()) {
            Err(GsrError::Load(msg)) => assert!(msg.contains("magic"), "{msg}"),
            other => panic!("expected Load error, got {other:?}"),
        }

        let mut wrong_version = bytes.clone();
        wrong_version[8] = 0xFF;
        match load(&mut wrong_version.as_slice()) {
            Err(GsrError::Load(msg)) => assert!(msg.contains("version"), "{msg}"),
            other => panic!("expected Load error, got {other:?}"),
        }

        let mut trailing = bytes.clone();
        trailing.push(0);
        match load(&mut trailing.as_slice()) {
            Err(GsrError::Load(msg)) => assert!(msg.contains("trailing"), "{msg}"),
            other => panic!("expected Load error, got {other:?}"),
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        for index in built_all() {
            let mut bytes = Vec::new();
            save(&mut bytes, &index).unwrap();
            // Truncating at *any* prefix length must be a typed Load error.
            let step = (bytes.len() / 64).max(1);
            for cut in (0..bytes.len()).step_by(step) {
                match load(&mut &bytes[..cut]) {
                    Err(GsrError::Load(_)) => {}
                    other => panic!(
                        "{}: truncation at {cut}/{} gave {other:?}",
                        index.name(),
                        bytes.len()
                    ),
                }
            }
        }
    }

    /// The v2 streaming format stays fully readable: save through the
    /// legacy writer, load through the sniffing entry point, and get the
    /// same answers and cost counters as the v3 round trip.
    #[test]
    fn v2_snapshots_still_load_bit_identically() {
        let prep = paper_example::prepared();
        for index in built_all() {
            let mut v2 = Vec::new();
            save_v2(&mut v2, &index).unwrap();
            assert_eq!(&v2[8..12], &FORMAT_VERSION_V2.to_le_bytes());
            let loaded = load(&mut v2.as_slice()).unwrap();
            assert_eq!(loaded.method_key(), index.method_key());
            for v in prep.network().graph().vertices() {
                for r in paper_example::probe_regions() {
                    assert_eq!(
                        loaded.query_with_cost_unchecked(v, &r),
                        index.query_with_cost_unchecked(v, &r),
                        "{} v={v} r={r}",
                        index.name()
                    );
                }
            }
        }
    }

    /// `trust` skips only the CRC pass; a trusted load of a pristine v3
    /// snapshot is identical to an untrusted one.
    #[test]
    fn trusted_v3_load_matches_untrusted() {
        for index in built_all() {
            let mut bytes = Vec::new();
            save(&mut bytes, &index).unwrap();
            assert_eq!(&bytes[8..12], &FORMAT_VERSION.to_le_bytes());
            let a = load_with(&mut bytes.as_slice(), LoadOptions { trust: false }).unwrap();
            let b = load_with(&mut bytes.as_slice(), LoadOptions { trust: true }).unwrap();
            assert_eq!(a.method_key(), b.method_key());
            assert_eq!(a.index_bytes(), b.index_bytes());
        }
    }

    /// The path loader memory-maps v3 files (on unix) and reports the
    /// format and mapping mode truthfully for both formats.
    #[test]
    fn path_load_reports_format_and_mapping() {
        let dir = std::env::temp_dir().join("gsr_store_load_info");
        std::fs::create_dir_all(&dir).unwrap();
        let indexes = built_all();

        let v3_path = dir.join("v3.snap");
        save_to_path(&v3_path, &indexes[3]).unwrap();
        let (idx, info) = load_from_path_with(&v3_path, LoadOptions::default()).unwrap();
        assert_eq!(idx.method_key(), "socreach");
        assert_eq!(info.format, FORMAT_VERSION);
        assert_eq!(info.file_bytes, std::fs::metadata(&v3_path).unwrap().len());
        assert_eq!(info.mapped, cfg!(unix));

        let v2_path = dir.join("v2.snap");
        let mut w = std::io::BufWriter::new(std::fs::File::create(&v2_path).unwrap());
        save_v2(&mut w, &indexes[3]).unwrap();
        drop(w);
        let (idx, info) = load_from_path_with(&v2_path, LoadOptions::default()).unwrap();
        assert_eq!(idx.method_key(), "socreach");
        assert_eq!(info.format, FORMAT_VERSION_V2);
        assert!(!info.mapped);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Every v3 section payload starts at a 64-byte-aligned file offset
    /// and the declared file length matches the byte count exactly.
    #[test]
    fn v3_sections_are_aligned_and_sized_exactly() {
        for index in built_all() {
            let mut bytes = Vec::new();
            save(&mut bytes, &index).unwrap();
            let n = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
            let file_len = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
            assert_eq!(file_len, bytes.len() as u64, "{}", index.name());
            let mut end_of_last = 24 + n * 24;
            for i in 0..n {
                let e = &bytes[24 + i * 24..][..24];
                let off = u64::from_le_bytes(e[8..16].try_into().unwrap()) as usize;
                let len = u64::from_le_bytes(e[16..24].try_into().unwrap()) as usize;
                assert_eq!(off % 64, 0, "{} section {i}", index.name());
                assert!(off >= end_of_last, "{} section {i} overlaps", index.name());
                end_of_last = off + len;
            }
            assert_eq!(end_of_last, bytes.len(), "{}", index.name());
        }
    }

    #[test]
    fn staging_path_is_a_sibling_with_tmp_suffix() {
        assert_eq!(staging_path(Path::new("/a/b/idx.snap")), Path::new("/a/b/idx.snap.tmp"));
        assert_eq!(staging_path(Path::new("idx.snap")), Path::new("idx.snap.tmp"));
    }

    #[test]
    fn save_to_path_replaces_atomically_and_cleans_staging() {
        let dir = std::env::temp_dir().join("gsr_store_atomic_save");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("idx.snap");
        let indexes = built_all();

        super::save_to_path(&path, &indexes[4]).unwrap();
        assert!(!staging_path(&path).exists(), "staging file must be renamed away");
        assert_eq!(load_from_path(&path).unwrap().method_key(), "3dreach");

        // Overwriting with a different method swaps the whole file.
        super::save_to_path(&path, &indexes[2]).unwrap();
        assert_eq!(load_from_path(&path).unwrap().method_key(), "georeach");
        assert!(!staging_path(&path).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The crash-safety contract: a save killed at *any* byte leaves the
    /// previous snapshot loadable. A kill mid-save leaves exactly the
    /// debris this test plants — a partial staging file next to the intact
    /// target — because the target is only ever touched by the final
    /// rename of a fully synced file.
    #[test]
    fn partial_staging_write_never_corrupts_the_previous_snapshot() {
        let dir = std::env::temp_dir().join("gsr_store_crash_save");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("idx.snap");
        let indexes = built_all();
        let old = &indexes[4];
        super::save_to_path(&path, old).unwrap();
        let old_answers: Vec<bool> = paper_example::probe_regions()
            .iter()
            .map(|r| old.query(paper_example::A, r))
            .collect();

        let mut new_bytes = Vec::new();
        save(&mut new_bytes, &indexes[5]).unwrap();
        let step = (new_bytes.len() / 32).max(1);
        for cut in (0..=new_bytes.len()).step_by(step) {
            // Simulate a kill after `cut` bytes of the staging write.
            std::fs::write(staging_path(&path), &new_bytes[..cut]).unwrap();
            let reloaded = load_from_path(&path)
                .unwrap_or_else(|e| panic!("old snapshot corrupted at cut {cut}: {e}"));
            assert_eq!(reloaded.method_key(), "3dreach", "cut {cut}");
            for (r, expect) in paper_example::probe_regions().iter().zip(&old_answers) {
                assert_eq!(reloaded.query(paper_example::A, r), *expect, "cut {cut}");
            }
        }
        // After any such crash, the next save still succeeds and swaps in
        // the new index, clobbering the stale staging file.
        super::save_to_path(&path, &indexes[5]).unwrap();
        assert_eq!(load_from_path(&path).unwrap().method_key(), "3dreach-rev");
        assert!(!staging_path(&path).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// I/O faults while encoding surface as typed errors (never a panic),
    /// mirroring the `FailingReader` contract on the load side.
    #[test]
    fn failing_writer_faults_are_typed_errors() {
        use gsr_datagen::faults::FailingWriter;
        let index = &built_all()[4];
        let mut full = Vec::new();
        save(&mut full, index).unwrap();
        let step = (full.len() / 16).max(1);
        for budget in (0..full.len()).step_by(step) {
            let mut w = FailingWriter::new(Vec::new(), budget);
            match save(&mut w, index) {
                Err(GsrError::Internal(msg)) => {
                    assert!(msg.contains("snapshot save"), "{msg}")
                }
                other => panic!("budget {budget}: expected Internal error, got {other:?}"),
            }
        }
    }

    /// A save that cannot even create its staging file (here: the staging
    /// path is a directory) fails with a typed error and leaves the
    /// existing snapshot byte-identical.
    #[test]
    fn unwritable_staging_path_leaves_the_target_untouched() {
        let dir = std::env::temp_dir().join("gsr_store_unwritable_staging");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("idx.snap");
        let indexes = built_all();
        super::save_to_path(&path, &indexes[4]).unwrap();
        let before = std::fs::read(&path).unwrap();

        std::fs::create_dir_all(staging_path(&path)).unwrap();
        match super::save_to_path(&path, &indexes[5]) {
            Err(GsrError::Internal(msg)) => assert!(msg.contains("staging"), "{msg}"),
            other => panic!("expected Internal error, got {other:?}"),
        }
        assert_eq!(std::fs::read(&path).unwrap(), before, "target must be untouched");
        std::fs::remove_dir_all(&dir).ok();
    }
}
