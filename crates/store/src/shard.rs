//! Sharded snapshot sets: a directory of per-shard v3 snapshots plus a
//! small checksummed manifest.
//!
//! ## Directory layout
//!
//! ```text
//! <dir>/
//!   MANIFEST.gsrshard     routing metadata (see below)
//!   shard-000.gsr         ordinary v3 snapshot of shard 0's index
//!   shard-001.gsr         ...
//! ```
//!
//! Each shard file is a **plain v3 snapshot** written through the same
//! crash-safe staging path as [`crate::save_to_path`], so every existing
//! corruption/trust guarantee applies per shard and the files load through
//! the zero-copy mmap path. The manifest is written *last* (also staged +
//! atomically renamed), so a save killed at any point leaves either the
//! complete previous shard set or loose shard files without a manifest —
//! never a manifest pointing at missing or half-written shards it did not
//! verify first.
//!
//! ## Manifest wire format
//!
//! Little-endian, mirroring the snapshot framing:
//!
//! ```text
//! magic     [8]  "GSRSHRD\0"
//! version   u32  1
//! payload:
//!   num_shards    u32
//!   num_vertices  u64
//!   per shard:
//!     file name   u64 len + bytes (UTF-8, no path separators)
//!     has_mbr     u8 (0 | 1)
//!     mbr         f64 min_x, min_y, max_x, max_y (zeros when absent)
//! crc32     u32  over the payload bytes
//! ```

use std::path::{Path, PathBuf};
use std::sync::Arc;

use gsr_core::{GsrError, RangeReachIndex, ShardMember, ShardedIndex};
use gsr_geo::Rect;

use crate::wire::{crc32, Dec, Enc};
use crate::{load_err, staging_path, LoadInfo, LoadOptions, SnapshotIndex, FORMAT_VERSION};

/// First eight bytes of a shard-set manifest.
pub const SHARD_MAGIC: [u8; 8] = *b"GSRSHRD\0";

/// Current manifest format version.
pub const SHARD_MANIFEST_VERSION: u32 = 1;

/// File name of the manifest inside a shard-set directory.
pub const SHARD_MANIFEST: &str = "MANIFEST.gsrshard";

/// `true` when `path` is a shard-set directory (contains a manifest).
pub fn is_sharded_path(path: impl AsRef<Path>) -> bool {
    path.as_ref().join(SHARD_MANIFEST).is_file()
}

fn shard_file_name(i: usize) -> String {
    format!("shard-{i:03}.gsr")
}

/// Saves a sharded snapshot set to directory `dir`, creating it if needed.
///
/// Every shard snapshot goes through the crash-safe [`crate::save_to_path`]
/// staging dance; the manifest is staged and renamed into place last.
pub fn save_sharded_to_path(
    dir: impl AsRef<Path>,
    shards: &[(SnapshotIndex, Option<Rect>)],
) -> Result<(), GsrError> {
    let dir = dir.as_ref();
    if shards.is_empty() {
        return Err(GsrError::Internal("sharded save: empty shard set".into()));
    }
    let num_vertices = shards[0].0.num_vertices() as u64;
    for (i, (index, _)) in shards.iter().enumerate() {
        if index.num_vertices() as u64 != num_vertices {
            return Err(GsrError::Internal(format!(
                "sharded save: shard {i} has {} vertices, shard 0 has {num_vertices}",
                index.num_vertices()
            )));
        }
    }
    std::fs::create_dir_all(dir).map_err(|e| {
        GsrError::Internal(format!("sharded save {}: create dir: {e}", dir.display()))
    })?;
    let mut e = Enc::new();
    e.u32(shards.len() as u32);
    e.u64(num_vertices);
    for (i, (index, mbr)) in shards.iter().enumerate() {
        let name = shard_file_name(i);
        crate::save_to_path(dir.join(&name), index)?;
        e.vec_u8(name.as_bytes());
        match mbr {
            Some(r) => {
                e.u8(1);
                e.f64(r.min_x);
                e.f64(r.min_y);
                e.f64(r.max_x);
                e.f64(r.max_y);
            }
            None => {
                e.u8(0);
                for _ in 0..4 {
                    e.f64(0.0);
                }
            }
        }
    }
    let payload = e.into_bytes();
    let mut bytes = Vec::with_capacity(payload.len() + 16);
    bytes.extend_from_slice(&SHARD_MAGIC);
    bytes.extend_from_slice(&SHARD_MANIFEST_VERSION.to_le_bytes());
    bytes.extend_from_slice(&payload);
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());

    let target = dir.join(SHARD_MANIFEST);
    let tmp = staging_path(&target);
    let save_err = |stage: &str, e: std::io::Error| {
        GsrError::Internal(format!("sharded save {}: {stage}: {e}", target.display()))
    };
    let result = (|| {
        std::fs::write(&tmp, &bytes).map_err(|e| save_err("write staging", e))?;
        std::fs::rename(&tmp, &target).map_err(|e| save_err("rename into place", e))
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// One routing entry decoded from a shard-set manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardEntry {
    /// Snapshot file name relative to the manifest's directory.
    pub file: String,
    /// Tile MBR recorded at save time; `None` for an empty tile.
    pub mbr: Option<Rect>,
}

/// A decoded shard-set manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardManifest {
    /// Vertex-count of every shard's index (all shards must agree).
    pub num_vertices: u64,
    /// Per-shard routing entries in shard order.
    pub shards: Vec<ShardEntry>,
}

/// Reads and validates the manifest of the shard-set directory `dir`.
pub fn read_manifest(dir: impl AsRef<Path>) -> Result<ShardManifest, GsrError> {
    let path = dir.as_ref().join(SHARD_MANIFEST);
    let bytes = std::fs::read(&path)
        .map_err(|e| GsrError::Load(format!("shard manifest {}: {e}", path.display())))?;
    if bytes.len() < 16 {
        return Err(load_err("shard manifest truncated before header".into()));
    }
    if bytes[..8] != SHARD_MAGIC {
        return Err(load_err("bad shard manifest magic".into()));
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != SHARD_MANIFEST_VERSION {
        return Err(load_err(format!("unsupported shard manifest version {version}")));
    }
    let (payload, crc_bytes) = bytes[12..].split_at(bytes.len() - 16);
    let stored = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    if crc32(payload) != stored {
        return Err(load_err("shard manifest checksum mismatch".into()));
    }
    let mut d = Dec::new(payload);
    let num_shards = d.u32("shard manifest").map_err(load_err)?;
    if num_shards == 0 {
        return Err(load_err("shard manifest lists zero shards".into()));
    }
    let num_vertices = d.u64("shard manifest").map_err(load_err)?;
    let mut shards = Vec::with_capacity(num_shards as usize);
    for i in 0..num_shards {
        let name_bytes = d.vec_u8("shard manifest").map_err(load_err)?;
        let file = String::from_utf8(name_bytes)
            .map_err(|_| load_err(format!("shard {i}: file name is not UTF-8")))?;
        if file.is_empty() || file.contains(['/', '\\']) || file == ".." {
            return Err(load_err(format!("shard {i}: illegal file name {file:?}")));
        }
        let has_mbr = d.u8("shard manifest").map_err(load_err)?;
        let (min_x, min_y, max_x, max_y) = (
            d.f64("shard manifest").map_err(load_err)?,
            d.f64("shard manifest").map_err(load_err)?,
            d.f64("shard manifest").map_err(load_err)?,
            d.f64("shard manifest").map_err(load_err)?,
        );
        let mbr = match has_mbr {
            0 => None,
            1 => {
                if !(min_x.is_finite() && min_y.is_finite() && max_x.is_finite() && max_y.is_finite())
                    || min_x > max_x
                    || min_y > max_y
                {
                    return Err(load_err(format!("shard {i}: malformed MBR")));
                }
                Some(Rect::new(min_x, min_y, max_x, max_y))
            }
            k => return Err(load_err(format!("shard {i}: bad MBR flag {k}"))),
        };
        shards.push(ShardEntry { file, mbr });
    }
    d.finish("shard manifest").map_err(load_err)?;
    Ok(ShardManifest { num_vertices, shards })
}

/// Loads a sharded snapshot set from directory `dir` and assembles the
/// scatter-gather router. Every shard loads through the ordinary v3 path
/// (memory-mapped when possible) under the same [`LoadOptions`].
pub fn load_sharded_from_path_with(
    dir: impl AsRef<Path>,
    opts: LoadOptions,
) -> Result<(ShardedIndex, LoadInfo), GsrError> {
    let dir = dir.as_ref();
    let manifest = read_manifest(dir)?;
    let mut members = Vec::with_capacity(manifest.shards.len());
    let mut file_bytes = 0u64;
    let mut mapped = true;
    for (i, entry) in manifest.shards.iter().enumerate() {
        let (index, info) = crate::load_from_path_with(dir.join(&entry.file), opts)?;
        if index.num_vertices() as u64 != manifest.num_vertices {
            return Err(load_err(format!(
                "shard {i}: snapshot has {} vertices, manifest says {}",
                index.num_vertices(),
                manifest.num_vertices
            )));
        }
        file_bytes += info.file_bytes;
        mapped &= info.mapped;
        members.push(ShardMember { index: Arc::new(index), mbr: entry.mbr });
    }
    let sharded = ShardedIndex::new(members)?;
    Ok((sharded, LoadInfo { format: FORMAT_VERSION, mapped, file_bytes }))
}

/// The staging debris paths a killed sharded save could leave inside `dir`
/// (manifest staging file), exposed for fault-injection tests.
pub fn manifest_staging_path(dir: impl AsRef<Path>) -> PathBuf {
    staging_path(&dir.as_ref().join(SHARD_MANIFEST))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsr_core::methods::ThreeDReach;
    use gsr_core::{
        partition_tiles, tile_network, paper_example, PreparedNetwork, RangeReachIndex,
        SccSpatialPolicy,
    };

    fn build_set(shards: usize) -> Vec<(SnapshotIndex, Option<Rect>)> {
        let net = paper_example::network();
        partition_tiles(&net, shards)
            .iter()
            .map(|tile| {
                let prep = PreparedNetwork::new(tile_network(&net, tile).unwrap());
                let built = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
                (SnapshotIndex::ThreeDReach(built), tile.mbr)
            })
            .collect()
    }

    #[test]
    fn sharded_set_round_trips_and_routes_like_the_oracle() {
        let dir = std::env::temp_dir().join(format!("gsr-shard-rt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        save_sharded_to_path(&dir, &build_set(3)).unwrap();
        assert!(is_sharded_path(&dir));

        let (sharded, info) = load_sharded_from_path_with(&dir, LoadOptions::default()).unwrap();
        assert_eq!(info.format, FORMAT_VERSION);
        assert!(info.file_bytes > 0);
        assert_eq!(sharded.num_shards(), 3);

        let prep = paper_example::prepared();
        let oracle = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
        let region = paper_example::query_region();
        for v in 0..oracle.num_vertices() as u32 {
            assert_eq!(sharded.query(v, &region), oracle.query(v, &region), "v={v}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_corruption_is_a_typed_load_error() {
        let dir = std::env::temp_dir().join(format!("gsr-shard-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        save_sharded_to_path(&dir, &build_set(2)).unwrap();

        let path = dir.join(SHARD_MANIFEST);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        match load_sharded_from_path_with(&dir, LoadOptions::default()) {
            Err(GsrError::Load(msg)) => assert!(msg.contains("checksum"), "{msg}"),
            other => panic!("expected typed Load error, got {other:?}"),
        }

        // A missing manifest must be a typed error too, not a panic.
        std::fs::remove_file(&path).unwrap();
        assert!(!is_sharded_path(&dir));
        assert!(matches!(
            load_sharded_from_path_with(&dir, LoadOptions::default()),
            Err(GsrError::Load(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mismatched_vertex_counts_are_rejected() {
        let dir = std::env::temp_dir().join(format!("gsr-shard-mismatch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        save_sharded_to_path(&dir, &build_set(2)).unwrap();

        // Overwrite shard 1 with a snapshot of a different network.
        let tiny = gsr_core::GeosocialNetwork::new(
            gsr_graph::GraphBuilder::new(2).build(),
            vec![Some(gsr_geo::Point::new(0.0, 0.0)), None],
        )
        .unwrap();
        let prep = PreparedNetwork::new(tiny);
        let built = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
        crate::save_to_path(dir.join("shard-001.gsr"), &SnapshotIndex::ThreeDReach(built))
            .unwrap();
        match load_sharded_from_path_with(&dir, LoadOptions::default()) {
            Err(GsrError::Load(msg)) => assert!(msg.contains("vertices"), "{msg}"),
            other => panic!("expected typed Load error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
