//! The v3 zero-copy snapshot format: the sections *are* the arenas.
//!
//! A v3 file is a 24-byte header, a directory of fixed-width entries, and
//! then one section per index column, each laid out at a 64-byte-aligned
//! offset exactly as the in-memory arena stores it (fixed-width
//! little-endian elements, no framing inside the payload). Loading
//! therefore needs **zero deserialization**: the file is mapped (or read
//! once into an aligned buffer) and every column becomes a
//! [`gsr_graph::Col`] view into it. Only two small sections — `META` and
//! GeoReach's `SPA_INFO` — keep the v2-style `Enc` encoding, because their
//! contents are heterogeneous and tiny.
//!
//! ```text
//! header      24 B   magic (8) | version u32 = 3 | section_count u32 | file_len u64
//! directory   24 B * section_count
//!               tag u16 | elem u8 | flags u8 | crc u32 | offset u64 | len u64
//! sections           payloads at ascending 64-byte-aligned offsets,
//!                    zero padding between, file_len = end of the last
//! ```
//!
//! The loader validates the directory structurally (alignment, ordering,
//! bounds, zeroed padding, exact `file_len`), verifies every section's
//! CRC-32 unless the caller opts into trusting the file, and then rebuilds
//! the index through the owning crates' validated `from_cols`
//! constructors — so a corrupt snapshot is a typed [`GsrError::Load`],
//! never a panic, even with CRC verification skipped.

use std::borrow::Cow;
use std::io::Write;
use std::sync::Arc;

use gsr_core::methods::{
    ScanMode, SocReach, SpaInfoParts, SpaReachBfl, SpaReachFilterParts, SpaReachInt, ThreeDReach,
    ThreeDReachRev,
};
use gsr_core::{GsrError, SccSpatialPolicy};
use gsr_geo::{Aabb, Point};
use gsr_graph::{bytes_of, Col, DiGraph, Pod};
use gsr_index::{RTree, RTreeCols, RTreeParams};
use gsr_reach::bfl::BflIndex;
use gsr_reach::compact::{CompactLabels, DeltaArray};
use gsr_reach::interval::{Interval, IntervalLabeling};

use crate::arena::{ArenaBytes, ARENA_ALIGN};
use crate::codec::{dec_rect, dec_spa_info, enc_rect, enc_spa_info};
use crate::wire::{crc32, Dec, Enc};
use crate::{
    check_backend_coverage, io_save, load_err, method_tag, SnapshotIndex, FORMAT_VERSION, MAGIC,
};

/// Header length: magic + version + section count + file length.
pub const HEADER_LEN: usize = 24;
/// Directory entry length.
pub const DIR_ENTRY_LEN: usize = 24;

/// Section tags. Multi-section structures reserve a contiguous tag block;
/// the per-dimension R-tree entry bounds add the dimension index to the
/// base tag (an absent `RT_ENTRY_HI + d` marks dimension `d` degenerate).
mod tag {
    pub const META: u16 = 0x01;
    pub const COMP_OF: u16 = 0x10;
    pub const MEMBER_OFFSETS: u16 = 0x11;
    pub const MEMBER_POINTS: u16 = 0x12;
    pub const RT_MBRS: u16 = 0x20;
    pub const RT_CHILD_START: u16 = 0x21;
    pub const RT_CHILDREN: u16 = 0x22;
    pub const RT_ENTRY_START: u16 = 0x23;
    pub const RT_VALUES: u16 = 0x24;
    pub const RT_ENTRY_LO: u16 = 0x30; // + dimension (0..N)
    pub const RT_ENTRY_HI: u16 = 0x38; // + dimension; absent = degenerate
    pub const LAB_POST: u16 = 0x40;
    pub const LAB_POST_TO_VERTEX: u16 = 0x41;
    pub const LAB_OFFSETS: u16 = 0x42;
    pub const LAB_INTERVALS: u16 = 0x43;
    pub const CL_OFFSETS: u16 = 0x50;
    pub const CL_BYTES: u16 = 0x51;
    pub const DAG_OUT_OFFSETS: u16 = 0x60;
    pub const DAG_OUT_TARGETS: u16 = 0x61;
    pub const DAG_IN_OFFSETS: u16 = 0x62;
    pub const DAG_IN_SOURCES: u16 = 0x63;
    pub const BFL_POST: u16 = 0x70;
    pub const BFL_TREE_MIN: u16 = 0x71;
    pub const BFL_OUT_FILTERS: u16 = 0x72;
    pub const BFL_IN_FILTERS: u16 = 0x73;
    pub const SPA_INFO: u16 = 0x80;
    pub const DA_ANCHORS: u16 = 0x90;
    pub const DA_STARTS: u16 = 0x91;
    pub const DA_BYTES: u16 = 0x92;
    pub const REV_POST: u16 = 0xA0;
    pub const SOC_POINTS: u16 = 0xB0;
}

fn align_up(x: usize) -> usize {
    x.div_ceil(ARENA_ALIGN) * ARENA_ALIGN
}

// ---------------------------------------------------------------------------
// Save.

struct Section<'a> {
    tag: u16,
    elem: u8,
    bytes: Cow<'a, [u8]>,
}

/// A section borrowing an arena column directly — the zero-copy save path.
fn sec<T: Pod>(tag: u16, xs: &[T]) -> Section<'_> {
    Section { tag, elem: std::mem::size_of::<T>() as u8, bytes: Cow::Borrowed(bytes_of(xs)) }
}

/// An `Enc`-encoded opaque section (META, SPA_INFO).
fn sec_enc(tag: u16, e: Enc) -> Section<'static> {
    Section { tag, elem: 1, bytes: Cow::Owned(e.into_bytes()) }
}

fn push_members<'a>(out: &mut Vec<Section<'a>>, offsets: &'a [u32], points: &'a [Point]) {
    out.push(sec(tag::MEMBER_OFFSETS, offsets));
    out.push(sec(tag::MEMBER_POINTS, points));
}

fn push_rtree<'a, const N: usize>(out: &mut Vec<Section<'a>>, t: &RTreeCols<'a, N, u32>) {
    out.push(sec(tag::RT_MBRS, t.mbrs));
    out.push(sec(tag::RT_CHILD_START, t.child_start));
    out.push(sec(tag::RT_CHILDREN, t.children));
    out.push(sec(tag::RT_ENTRY_START, t.entry_start));
    out.push(sec(tag::RT_VALUES, t.values));
    for d in 0..N {
        out.push(sec(tag::RT_ENTRY_LO + d as u16, t.entry_lo[d]));
        if let Some(hi) = t.entry_hi[d] {
            out.push(sec(tag::RT_ENTRY_HI + d as u16, hi));
        }
    }
}

fn push_digraph<'a>(out: &mut Vec<Section<'a>>, g: &'a DiGraph) {
    let (out_offsets, out_targets) = g.out_csr();
    let (in_offsets, in_sources) = g.in_csr();
    out.push(sec(tag::DAG_OUT_OFFSETS, out_offsets));
    out.push(sec(tag::DAG_OUT_TARGETS, out_targets));
    out.push(sec(tag::DAG_IN_OFFSETS, in_offsets));
    out.push(sec(tag::DAG_IN_SOURCES, in_sources));
}

fn meta_rtree_params(meta: &mut Enc, params: RTreeParams) {
    meta.u64(params.max_entries as u64);
    meta.u64(params.min_entries as u64);
}

fn meta_policy(meta: &mut Enc, policy: SccSpatialPolicy) {
    meta.u8(match policy {
        SccSpatialPolicy::Replicate => 0,
        SccSpatialPolicy::Mbr => 1,
    });
}

fn unsnapshottable() -> GsrError {
    GsrError::Internal(
        "this SpaReach configuration (ablation backend or streaming mode) cannot be snapshotted"
            .into(),
    )
}

fn sections_for(index: &SnapshotIndex) -> Result<Vec<Section<'_>>, GsrError> {
    let mut out = Vec::new();
    match index {
        SnapshotIndex::SpaReachBfl(i) => {
            let (comp_of, tree, is_mbr, reach, member_offsets, member_points) =
                i.cols().ok_or_else(unsnapshottable)?;
            let (g, post, tree_min, out_filters, in_filters, words) = reach.parts();
            let t = tree.cols();
            let mut meta = Enc::new();
            meta.u8(method_tag::SPAREACH_BFL);
            meta.u8(is_mbr as u8);
            meta_rtree_params(&mut meta, t.params);
            meta.u64(words as u64);
            out.push(sec_enc(tag::META, meta));
            out.push(sec(tag::COMP_OF, comp_of));
            push_members(&mut out, member_offsets, member_points);
            push_rtree(&mut out, &t);
            push_digraph(&mut out, g);
            out.push(sec(tag::BFL_POST, post));
            out.push(sec(tag::BFL_TREE_MIN, tree_min));
            out.push(sec(tag::BFL_OUT_FILTERS, out_filters));
            out.push(sec(tag::BFL_IN_FILTERS, in_filters));
        }
        SnapshotIndex::SpaReachInt(i) => {
            let (comp_of, tree, is_mbr, reach, member_offsets, member_points) =
                i.cols().ok_or_else(unsnapshottable)?;
            let (post, post_to_vertex, offsets, intervals) = reach.parts();
            let t = tree.cols();
            let mut meta = Enc::new();
            meta.u8(method_tag::SPAREACH_INT);
            meta.u8(is_mbr as u8);
            meta_rtree_params(&mut meta, t.params);
            out.push(sec_enc(tag::META, meta));
            out.push(sec(tag::COMP_OF, comp_of));
            push_members(&mut out, member_offsets, member_points);
            push_rtree(&mut out, &t);
            out.push(sec(tag::LAB_POST, post));
            out.push(sec(tag::LAB_POST_TO_VERTEX, post_to_vertex));
            out.push(sec(tag::LAB_OFFSETS, offsets));
            out.push(sec(tag::LAB_INTERVALS, intervals));
        }
        SnapshotIndex::GeoReach(i) => {
            let (comp_of, dag, space, finest_exp, member_offsets, member_points) = i.cols();
            let info: Vec<SpaInfoParts> = i.spa_info().collect();
            let mut meta = Enc::new();
            meta.u8(method_tag::GEOREACH);
            meta.u8(finest_exp);
            enc_rect(&mut meta, &space);
            out.push(sec_enc(tag::META, meta));
            out.push(sec(tag::COMP_OF, comp_of));
            push_digraph(&mut out, dag);
            let mut si = Enc::new();
            enc_spa_info(&mut si, &info);
            out.push(sec_enc(tag::SPA_INFO, si));
            push_members(&mut out, member_offsets, member_points);
        }
        SnapshotIndex::SocReach(i) => {
            let (comp_of, labels, post_offsets, points, mode) = i.parts();
            let (max_post, cl_offsets, cl_bytes) = labels.parts();
            let (da_len, da_anchors, da_starts, da_bytes) = post_offsets.cols();
            let mut meta = Enc::new();
            meta.u8(method_tag::SOCREACH);
            meta.u8(match mode {
                ScanMode::PerPost => 0,
                ScanMode::Compacted => 1,
            });
            meta.u32(max_post);
            meta.u64(da_len as u64);
            out.push(sec_enc(tag::META, meta));
            out.push(sec(tag::COMP_OF, comp_of));
            out.push(sec(tag::CL_OFFSETS, cl_offsets));
            out.push(sec(tag::CL_BYTES, cl_bytes));
            out.push(sec(tag::DA_ANCHORS, da_anchors));
            out.push(sec(tag::DA_STARTS, da_starts));
            out.push(sec(tag::DA_BYTES, da_bytes));
            out.push(sec(tag::SOC_POINTS, points));
        }
        SnapshotIndex::ThreeDReach(i) => {
            let (comp_of, labels, tree, policy, member_offsets, member_points) = i.cols();
            let (max_post, cl_offsets, cl_bytes) = labels.parts();
            let t = tree.cols();
            let mut meta = Enc::new();
            meta.u8(method_tag::THREED);
            meta_policy(&mut meta, policy);
            meta_rtree_params(&mut meta, t.params);
            meta.u32(max_post);
            out.push(sec_enc(tag::META, meta));
            out.push(sec(tag::COMP_OF, comp_of));
            out.push(sec(tag::CL_OFFSETS, cl_offsets));
            out.push(sec(tag::CL_BYTES, cl_bytes));
            push_rtree(&mut out, &t);
            push_members(&mut out, member_offsets, member_points);
        }
        SnapshotIndex::ThreeDReachRev(i) => {
            let (comp_of, rev_post, tree, policy, member_offsets, member_points) = i.cols();
            let t = tree.cols();
            let mut meta = Enc::new();
            meta.u8(method_tag::THREED_REV);
            meta_policy(&mut meta, policy);
            meta_rtree_params(&mut meta, t.params);
            out.push(sec_enc(tag::META, meta));
            out.push(sec(tag::COMP_OF, comp_of));
            out.push(sec(tag::REV_POST, rev_post));
            push_rtree(&mut out, &t);
            push_members(&mut out, member_offsets, member_points);
        }
    }
    Ok(out)
}

/// Writes a v3 snapshot: header, CRC'd directory, then the section
/// payloads — each one a single `write_all` of the borrowed arena bytes,
/// so the save performs no per-element encoding work at all.
pub(crate) fn save_v3(w: &mut impl Write, index: &SnapshotIndex) -> Result<(), GsrError> {
    let sections = sections_for(index)?;
    let n = sections.len();
    let dir_end = HEADER_LEN + n * DIR_ENTRY_LEN;

    let mut offsets = Vec::with_capacity(n);
    let mut cur = dir_end;
    for s in &sections {
        let off = align_up(cur);
        offsets.push(off);
        cur = off + s.bytes.len();
    }
    let file_len = cur as u64;

    w.write_all(&MAGIC).map_err(io_save)?;
    w.write_all(&FORMAT_VERSION.to_le_bytes()).map_err(io_save)?;
    w.write_all(&(n as u32).to_le_bytes()).map_err(io_save)?;
    w.write_all(&file_len.to_le_bytes()).map_err(io_save)?;

    for (s, &off) in sections.iter().zip(&offsets) {
        let mut e = [0u8; DIR_ENTRY_LEN];
        e[0..2].copy_from_slice(&s.tag.to_le_bytes());
        e[2] = s.elem;
        // e[3] (flags) stays 0: reserved.
        e[4..8].copy_from_slice(&crc32(&s.bytes).to_le_bytes());
        e[8..16].copy_from_slice(&(off as u64).to_le_bytes());
        e[16..24].copy_from_slice(&(s.bytes.len() as u64).to_le_bytes());
        w.write_all(&e).map_err(io_save)?;
    }

    let zeros = [0u8; ARENA_ALIGN];
    let mut cur = dir_end;
    for (s, &off) in sections.iter().zip(&offsets) {
        w.write_all(&zeros[..off - cur]).map_err(io_save)?;
        w.write_all(&s.bytes).map_err(io_save)?;
        cur = off + s.bytes.len();
    }
    w.flush().map_err(io_save)
}

// ---------------------------------------------------------------------------
// Load.

struct DirEntry {
    tag: u16,
    start: usize,
    len: usize,
}

/// The parsed directory, with consumption tracking: every section must be
/// claimed by the method loader exactly once, so a snapshot smuggling
/// extra (or missing) sections is rejected even when its CRCs are intact.
struct SectionMap {
    entries: Vec<DirEntry>,
    used: Vec<bool>,
}

impl SectionMap {
    fn take(&mut self, tag: u16) -> Option<(usize, usize)> {
        let i = self.entries.iter().position(|e| e.tag == tag)?;
        if self.used[i] {
            return None;
        }
        self.used[i] = true;
        Some((self.entries[i].start, self.entries[i].len))
    }

    fn finish(&self) -> Result<(), GsrError> {
        for (e, used) in self.entries.iter().zip(&self.used) {
            if !used {
                return Err(load_err(format!(
                    "unexpected section 0x{:02x} for this method",
                    e.tag
                )));
            }
        }
        Ok(())
    }
}

/// Claims a section and views it as a typed column borrowing the arena.
fn col<T: Pod>(
    arena: &Arc<ArenaBytes>,
    map: &mut SectionMap,
    tag: u16,
    what: &str,
) -> Result<Col<T>, GsrError> {
    let (start, len) =
        map.take(tag).ok_or_else(|| load_err(format!("missing section {what}")))?;
    let elem = std::mem::size_of::<T>();
    if len % elem != 0 {
        return Err(load_err(format!(
            "section {what}: {len} bytes is not a whole number of {elem}-byte elements"
        )));
    }
    Col::view(arena, start, len / elem).map_err(|e| load_err(format!("section {what}: {e}")))
}

/// Like [`col`], but `None` when the section is absent (degenerate R-tree
/// dimensions elide their upper-bound column).
fn col_opt<T: Pod>(
    arena: &Arc<ArenaBytes>,
    map: &mut SectionMap,
    tag: u16,
    what: &str,
) -> Result<Option<Col<T>>, GsrError> {
    let Some((start, len)) = map.take(tag) else { return Ok(None) };
    let elem = std::mem::size_of::<T>();
    if len % elem != 0 {
        return Err(load_err(format!(
            "section {what}: {len} bytes is not a whole number of {elem}-byte elements"
        )));
    }
    Col::view(arena, start, len / elem)
        .map(Some)
        .map_err(|e| load_err(format!("section {what}: {e}")))
}

fn take_payload<'a>(
    bytes: &'a [u8],
    map: &mut SectionMap,
    tag: u16,
    what: &str,
) -> Result<&'a [u8], GsrError> {
    let (start, len) =
        map.take(tag).ok_or_else(|| load_err(format!("missing section {what}")))?;
    Ok(&bytes[start..start + len])
}

fn meta_u8(d: &mut Dec) -> Result<u8, GsrError> {
    d.u8("meta").map_err(load_err)
}

fn meta_usize(d: &mut Dec) -> Result<usize, GsrError> {
    let v = d.u64("meta").map_err(load_err)?;
    usize::try_from(v).map_err(|_| load_err(format!("meta value {v} overflows this platform")))
}

fn meta_rt_params(d: &mut Dec) -> Result<RTreeParams, GsrError> {
    let max_entries = meta_usize(d)?;
    let min_entries = meta_usize(d)?;
    Ok(RTreeParams { max_entries, min_entries })
}

fn meta_scc_policy(d: &mut Dec) -> Result<SccSpatialPolicy, GsrError> {
    match meta_u8(d)? {
        0 => Ok(SccSpatialPolicy::Replicate),
        1 => Ok(SccSpatialPolicy::Mbr),
        k => Err(load_err(format!("unknown scc policy {k}"))),
    }
}

fn load_rtree<const N: usize>(
    arena: &Arc<ArenaBytes>,
    map: &mut SectionMap,
    params: RTreeParams,
) -> Result<RTree<N, u32>, GsrError> {
    let mbrs = col::<Aabb<N>>(arena, map, tag::RT_MBRS, "rtree-mbrs")?;
    let child_start = col(arena, map, tag::RT_CHILD_START, "rtree-child-start")?;
    let children = col(arena, map, tag::RT_CHILDREN, "rtree-children")?;
    let entry_start = col(arena, map, tag::RT_ENTRY_START, "rtree-entry-start")?;
    let values = col(arena, map, tag::RT_VALUES, "rtree-values")?;
    let mut lo = Vec::with_capacity(N);
    let mut hi = Vec::with_capacity(N);
    for d in 0..N {
        lo.push(col::<f64>(arena, map, tag::RT_ENTRY_LO + d as u16, "rtree-entry-lo")?);
        hi.push(col_opt::<f64>(arena, map, tag::RT_ENTRY_HI + d as u16, "rtree-entry-hi")?);
    }
    let entry_lo: [Col<f64>; N] =
        lo.try_into().unwrap_or_else(|_| unreachable!("lo has exactly N columns"));
    let entry_hi: [Option<Col<f64>>; N] =
        hi.try_into().unwrap_or_else(|_| unreachable!("hi has exactly N columns"));
    RTree::from_cols(params, mbrs, child_start, children, entry_start, entry_lo, entry_hi, values)
        .map_err(load_err)
}

fn load_digraph(arena: &Arc<ArenaBytes>, map: &mut SectionMap) -> Result<DiGraph, GsrError> {
    let out_offsets = col(arena, map, tag::DAG_OUT_OFFSETS, "dag-out-offsets")?;
    let out_targets = col(arena, map, tag::DAG_OUT_TARGETS, "dag-out-targets")?;
    let in_offsets = col(arena, map, tag::DAG_IN_OFFSETS, "dag-in-offsets")?;
    let in_sources = col(arena, map, tag::DAG_IN_SOURCES, "dag-in-sources")?;
    DiGraph::from_csr_cols(out_offsets, out_targets, in_offsets, in_sources).map_err(load_err)
}

fn filter_of(kind: u8, tree: RTree<2, u32>) -> Result<SpaReachFilterParts, GsrError> {
    match kind {
        0 => Ok(SpaReachFilterParts::Points(tree)),
        1 => Ok(SpaReachFilterParts::CompBoxes(tree)),
        k => Err(load_err(format!("unknown spatial-filter kind {k}"))),
    }
}

fn load_spareach_bfl(
    arena: &Arc<ArenaBytes>,
    map: &mut SectionMap,
    d: &mut Dec,
) -> Result<SnapshotIndex, GsrError> {
    let kind = meta_u8(d)?;
    let params = meta_rt_params(d)?;
    let words = meta_usize(d)?;
    d.finish("meta").map_err(load_err)?;
    let comp_of: Col<u32> = col(arena, map, tag::COMP_OF, "comp-of")?;
    let member_offsets: Col<u32> = col(arena, map, tag::MEMBER_OFFSETS, "member-offsets")?;
    let member_points: Col<Point> = col(arena, map, tag::MEMBER_POINTS, "member-points")?;
    let tree = load_rtree::<2>(arena, map, params)?;
    let g = load_digraph(arena, map)?;
    let post: Col<u32> = col(arena, map, tag::BFL_POST, "bfl-post")?;
    let tree_min: Col<u32> = col(arena, map, tag::BFL_TREE_MIN, "bfl-tree-min")?;
    let out_filters: Col<u64> = col(arena, map, tag::BFL_OUT_FILTERS, "bfl-out-filters")?;
    let in_filters: Col<u64> = col(arena, map, tag::BFL_IN_FILTERS, "bfl-in-filters")?;
    let reach =
        BflIndex::from_parts(g, post, tree_min, out_filters, in_filters, words).map_err(load_err)?;
    let ncomp = member_offsets.len().saturating_sub(1);
    check_backend_coverage(ncomp, reach.parts().0.num_vertices(), "bfl")?;
    let filter = filter_of(kind, tree)?;
    Ok(SnapshotIndex::SpaReachBfl(
        SpaReachBfl::from_cols(comp_of, filter, reach, member_offsets, member_points, "SpaReach-BFL")
            .map_err(load_err)?,
    ))
}

fn load_spareach_int(
    arena: &Arc<ArenaBytes>,
    map: &mut SectionMap,
    d: &mut Dec,
) -> Result<SnapshotIndex, GsrError> {
    let kind = meta_u8(d)?;
    let params = meta_rt_params(d)?;
    d.finish("meta").map_err(load_err)?;
    let comp_of: Col<u32> = col(arena, map, tag::COMP_OF, "comp-of")?;
    let member_offsets: Col<u32> = col(arena, map, tag::MEMBER_OFFSETS, "member-offsets")?;
    let member_points: Col<Point> = col(arena, map, tag::MEMBER_POINTS, "member-points")?;
    let tree = load_rtree::<2>(arena, map, params)?;
    let post: Col<u32> = col(arena, map, tag::LAB_POST, "labeling-post")?;
    let post_to_vertex: Col<u32> = col(arena, map, tag::LAB_POST_TO_VERTEX, "labeling-inverse")?;
    let offsets: Col<u32> = col(arena, map, tag::LAB_OFFSETS, "labeling-offsets")?;
    let intervals: Col<Interval> = col(arena, map, tag::LAB_INTERVALS, "labeling-intervals")?;
    let reach =
        IntervalLabeling::from_parts(post, post_to_vertex, offsets, intervals).map_err(load_err)?;
    let ncomp = member_offsets.len().saturating_sub(1);
    check_backend_coverage(ncomp, reach.num_vertices(), "labeling")?;
    let filter = filter_of(kind, tree)?;
    Ok(SnapshotIndex::SpaReachInt(
        SpaReachInt::from_cols(comp_of, filter, reach, member_offsets, member_points, "SpaReach-INT")
            .map_err(load_err)?,
    ))
}

fn load_georeach(
    arena: &Arc<ArenaBytes>,
    bytes: &[u8],
    map: &mut SectionMap,
    d: &mut Dec,
) -> Result<SnapshotIndex, GsrError> {
    let finest_exp = meta_u8(d)?;
    let space = dec_rect(d, "meta").map_err(load_err)?;
    d.finish("meta").map_err(load_err)?;
    let comp_of: Col<u32> = col(arena, map, tag::COMP_OF, "comp-of")?;
    let dag = load_digraph(arena, map)?;
    let payload = take_payload(bytes, map, tag::SPA_INFO, "spa-info")?;
    let mut sd = Dec::new(payload);
    let info = dec_spa_info(&mut sd, "spa-info").map_err(load_err)?;
    sd.finish("spa-info").map_err(load_err)?;
    let member_offsets: Col<u32> = col(arena, map, tag::MEMBER_OFFSETS, "member-offsets")?;
    let member_points: Col<Point> = col(arena, map, tag::MEMBER_POINTS, "member-points")?;
    Ok(SnapshotIndex::GeoReach(
        gsr_core::methods::GeoReach::from_cols(
            comp_of,
            dag,
            space,
            finest_exp,
            info,
            member_offsets,
            member_points,
        )
        .map_err(load_err)?,
    ))
}

fn load_socreach(
    arena: &Arc<ArenaBytes>,
    map: &mut SectionMap,
    d: &mut Dec,
) -> Result<SnapshotIndex, GsrError> {
    let mode = match meta_u8(d)? {
        0 => ScanMode::PerPost,
        1 => ScanMode::Compacted,
        k => return Err(load_err(format!("unknown scan mode {k}"))),
    };
    let max_post = d.u32("meta").map_err(load_err)?;
    let da_len = meta_usize(d)?;
    d.finish("meta").map_err(load_err)?;
    let comp_of: Col<u32> = col(arena, map, tag::COMP_OF, "comp-of")?;
    let cl_offsets: Col<u32> = col(arena, map, tag::CL_OFFSETS, "compact-labels-offsets")?;
    let cl_bytes: Col<u8> = col(arena, map, tag::CL_BYTES, "compact-labels-bytes")?;
    let labels = CompactLabels::from_parts(max_post, cl_offsets, cl_bytes).map_err(load_err)?;
    let da_anchors: Col<u32> = col(arena, map, tag::DA_ANCHORS, "delta-anchors")?;
    let da_starts: Col<u32> = col(arena, map, tag::DA_STARTS, "delta-starts")?;
    let da_bytes: Col<u8> = col(arena, map, tag::DA_BYTES, "delta-bytes")?;
    let post_offsets =
        DeltaArray::from_cols(da_len, da_anchors, da_starts, da_bytes).map_err(load_err)?;
    let points: Col<Point> = col(arena, map, tag::SOC_POINTS, "post-points")?;
    Ok(SnapshotIndex::SocReach(
        SocReach::from_cols(comp_of, labels, post_offsets, points, mode).map_err(load_err)?,
    ))
}

fn load_threed(
    arena: &Arc<ArenaBytes>,
    map: &mut SectionMap,
    d: &mut Dec,
) -> Result<SnapshotIndex, GsrError> {
    let policy = meta_scc_policy(d)?;
    let params = meta_rt_params(d)?;
    let max_post = d.u32("meta").map_err(load_err)?;
    d.finish("meta").map_err(load_err)?;
    let comp_of: Col<u32> = col(arena, map, tag::COMP_OF, "comp-of")?;
    let cl_offsets: Col<u32> = col(arena, map, tag::CL_OFFSETS, "compact-labels-offsets")?;
    let cl_bytes: Col<u8> = col(arena, map, tag::CL_BYTES, "compact-labels-bytes")?;
    let labels = CompactLabels::from_parts(max_post, cl_offsets, cl_bytes).map_err(load_err)?;
    let tree = load_rtree::<3>(arena, map, params)?;
    let member_offsets: Col<u32> = col(arena, map, tag::MEMBER_OFFSETS, "member-offsets")?;
    let member_points: Col<Point> = col(arena, map, tag::MEMBER_POINTS, "member-points")?;
    Ok(SnapshotIndex::ThreeDReach(
        ThreeDReach::from_cols(comp_of, labels, tree, policy, member_offsets, member_points)
            .map_err(load_err)?,
    ))
}

fn load_threed_rev(
    arena: &Arc<ArenaBytes>,
    map: &mut SectionMap,
    d: &mut Dec,
) -> Result<SnapshotIndex, GsrError> {
    let policy = meta_scc_policy(d)?;
    let params = meta_rt_params(d)?;
    d.finish("meta").map_err(load_err)?;
    let comp_of: Col<u32> = col(arena, map, tag::COMP_OF, "comp-of")?;
    let rev_post: Col<u32> = col(arena, map, tag::REV_POST, "rev-post")?;
    let tree = load_rtree::<3>(arena, map, params)?;
    let member_offsets: Col<u32> = col(arena, map, tag::MEMBER_OFFSETS, "member-offsets")?;
    let member_points: Col<Point> = col(arena, map, tag::MEMBER_POINTS, "member-points")?;
    Ok(SnapshotIndex::ThreeDReachRev(
        ThreeDReachRev::from_cols(comp_of, rev_post, tree, policy, member_offsets, member_points)
            .map_err(load_err)?,
    ))
}

/// Loads a v3 snapshot from a complete mapped (or aligned in-memory) file.
///
/// `trust` skips only the per-section CRC pass — the structural directory
/// checks and every `from_cols` invariant still run, so even a trusted
/// load of garbage is a typed error, not undefined behavior.
// Little-endian reads over slices the caller has already length-checked;
// the re-slice makes the width explicit so `copy_from_slice` cannot
// mismatch.
fn le_u16(b: &[u8]) -> u16 {
    let mut a = [0u8; 2];
    a.copy_from_slice(&b[..2]);
    u16::from_le_bytes(a)
}

fn le_u32(b: &[u8]) -> u32 {
    let mut a = [0u8; 4];
    a.copy_from_slice(&b[..4]);
    u32::from_le_bytes(a)
}

fn le_u64(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[..8]);
    u64::from_le_bytes(a)
}

pub(crate) fn load_v3(arena: &Arc<ArenaBytes>, trust: bool) -> Result<SnapshotIndex, GsrError> {
    if !cfg!(target_endian = "little") {
        return Err(load_err(
            "v3 snapshots are little-endian column images; this host is big-endian".into(),
        ));
    }
    let bytes = arena.bytes();
    if bytes.len() < HEADER_LEN {
        return Err(load_err(format!(
            "truncated header: {} bytes, need {HEADER_LEN}",
            bytes.len()
        )));
    }
    if bytes[0..8] != MAGIC {
        return Err(load_err(format!("bad magic {:02x?}: not a gsr snapshot", &bytes[0..8])));
    }
    let version = le_u32(&bytes[8..12]);
    if version != FORMAT_VERSION {
        return Err(load_err(format!(
            "unsupported format version {version} (this build reads version {FORMAT_VERSION})"
        )));
    }
    let n = le_u32(&bytes[12..16]) as usize;
    let file_len = le_u64(&bytes[16..24]);
    if file_len > bytes.len() as u64 {
        return Err(load_err(format!(
            "truncated: header declares {file_len} bytes, {} present",
            bytes.len()
        )));
    }
    if file_len < bytes.len() as u64 {
        return Err(load_err("trailing bytes after the final section".into()));
    }
    let dir_end = n
        .checked_mul(DIR_ENTRY_LEN)
        .and_then(|d| d.checked_add(HEADER_LEN))
        .filter(|&d| d <= bytes.len())
        .ok_or_else(|| load_err(format!("truncated section directory ({n} sections)")))?;

    let mut entries: Vec<DirEntry> = Vec::with_capacity(n);
    let mut cur = dir_end;
    for i in 0..n {
        let e = &bytes[HEADER_LEN + i * DIR_ENTRY_LEN..][..DIR_ENTRY_LEN];
        let etag = le_u16(&e[0..2]);
        let elem = e[2] as usize;
        let flags = e[3];
        let crc = le_u32(&e[4..8]);
        let off = le_u64(&e[8..16]);
        let len = le_u64(&e[16..24]);
        let sect = |msg: &str| load_err(format!("section 0x{etag:02x}: {msg}"));
        if flags != 0 {
            return Err(sect(&format!("unknown flags 0x{flags:02x}")));
        }
        if elem == 0 {
            return Err(sect("zero element size"));
        }
        let off = usize::try_from(off).map_err(|_| sect("offset overflows this platform"))?;
        let len = usize::try_from(len).map_err(|_| sect("length overflows this platform"))?;
        if off % ARENA_ALIGN != 0 {
            return Err(sect(&format!("offset {off} is not {ARENA_ALIGN}-byte aligned")));
        }
        if off < cur {
            return Err(sect("overlaps the previous section or the directory"));
        }
        let end = off.checked_add(len).filter(|&e| e <= bytes.len()).ok_or_else(|| {
            sect(&format!("range {off}+{len} runs past the end of the file"))
        })?;
        if len % elem != 0 {
            return Err(sect(&format!("{len} bytes is not a multiple of element size {elem}")));
        }
        if bytes[cur..off].iter().any(|&b| b != 0) {
            return Err(sect("nonzero padding before the section"));
        }
        if entries.iter().any(|p| p.tag == etag) {
            return Err(sect("duplicate tag"));
        }
        if !trust && crc32(&bytes[off..end]) != crc {
            return Err(sect("crc mismatch"));
        }
        entries.push(DirEntry { tag: etag, start: off, len });
        cur = end;
    }
    if cur != bytes.len() {
        return Err(load_err("trailing bytes after the final section".into()));
    }

    let mut map = SectionMap { used: vec![false; entries.len()], entries };
    let meta = take_payload(bytes, &mut map, tag::META, "meta")?;
    let mut d = Dec::new(meta);
    let index = match meta_u8(&mut d)? {
        method_tag::SPAREACH_BFL => load_spareach_bfl(arena, &mut map, &mut d)?,
        method_tag::SPAREACH_INT => load_spareach_int(arena, &mut map, &mut d)?,
        method_tag::GEOREACH => load_georeach(arena, bytes, &mut map, &mut d)?,
        method_tag::SOCREACH => load_socreach(arena, &mut map, &mut d)?,
        method_tag::THREED => load_threed(arena, &mut map, &mut d)?,
        method_tag::THREED_REV => load_threed_rev(arena, &mut map, &mut d)?,
        t => return Err(load_err(format!("unknown method tag {t}"))),
    };
    map.finish()?;
    Ok(index)
}
