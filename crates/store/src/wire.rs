//! Byte-level wire primitives of the snapshot format.
//!
//! A snapshot is a fixed file header followed by a sequence of *sections*.
//! Every section is independently framed and checksummed:
//!
//! ```text
//! tag      u8       section kind (see `crate::section` tags)
//! len      u64 LE   payload length in bytes
//! payload  len bytes
//! crc      u32 LE   CRC-32 (IEEE) of the payload
//! ```
//!
//! All multi-byte integers anywhere in the format are little-endian and
//! fixed-width; floating-point values are IEEE-754 `f64` bit patterns.
//! Decoding treats every byte as untrusted: truncation, checksum
//! mismatches, impossible counts and trailing garbage all surface as
//! `Err(String)` (wrapped into `gsr_core::GsrError::Load` at the crate
//! boundary) — never as a panic or an unbounded allocation.

use std::io::{Read, Write};

/// CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), bit-reflected,
/// table-driven. This is the same checksum zlib/PNG use, computed here from
/// scratch because the build is dependency-free.
///
/// Implemented with the slicing-by-8 technique — eight lookup tables let
/// the hot loop fold eight bytes per iteration instead of one, which
/// matters now that v3 snapshots checksum whole multi-hundred-megabyte
/// arenas: byte-at-a-time CRC would rival the disk read itself.
pub fn crc32(data: &[u8]) -> u32 {
    update_crc32(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Streaming form of [`crc32`]: feed `state` (seeded with `0xFFFF_FFFF`)
/// through successive chunks, then XOR with `0xFFFF_FFFF` to finish.
pub fn update_crc32(state: u32, data: &[u8]) -> u32 {
    const T: [[u32; 256]; 8] = crc32_tables();
    let mut crc = state;
    let mut chunks = data.chunks_exact(8);
    for w in &mut chunks {
        // Fold the CRC into the first four bytes, then look all eight up
        // in parallel tables (standard slicing-by-8 recurrence).
        let lo = crc ^ u32::from_le_bytes([w[0], w[1], w[2], w[3]]);
        crc = T[7][(lo & 0xFF) as usize]
            ^ T[6][((lo >> 8) & 0xFF) as usize]
            ^ T[5][((lo >> 16) & 0xFF) as usize]
            ^ T[4][(lo >> 24) as usize]
            ^ T[3][w[4] as usize]
            ^ T[2][w[5] as usize]
            ^ T[1][w[6] as usize]
            ^ T[0][w[7] as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ T[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

const fn crc32_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    // table[t][i] extends table[t-1][i] by one zero byte: the per-table
    // shift that lets eight byte lookups combine into one 8-byte step.
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

/// Growable little-endian payload encoder.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// A fresh, empty payload.
    pub fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an IEEE-754 `f64` bit pattern, little-endian.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed `u32` slice.
    pub fn vec_u32(&mut self, v: &[u32]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u32(x);
        }
    }

    /// Appends a length-prefixed `u64` slice.
    pub fn vec_u64(&mut self, v: &[u64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u64(x);
        }
    }

    /// Appends a length-prefixed raw byte string.
    pub fn vec_u8(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed `f64` slice.
    pub fn vec_f64(&mut self, v: &[f64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.f64(x);
        }
    }
}

/// Bounds-checked little-endian payload decoder. Every read validates the
/// remaining length first, so corrupt data can never index out of bounds.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Wraps a payload for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "truncated payload: {what} needs {n} bytes, {} left",
                self.remaining()
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32, String> {
        let s = self.take(4, what)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64, String> {
        let s = self.take(8, what)?;
        Ok(u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    /// Reads an IEEE-754 `f64`.
    pub fn f64(&mut self, what: &str) -> Result<f64, String> {
        let s = self.take(8, what)?;
        Ok(f64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    /// Reads a count prefix for elements of at least `elem_bytes` bytes
    /// each, rejecting counts the remaining payload cannot possibly hold —
    /// the guard that keeps a corrupt length from driving a huge
    /// allocation.
    pub fn count(&mut self, elem_bytes: usize, what: &str) -> Result<usize, String> {
        let raw = self.u64(what)?;
        let n = usize::try_from(raw).map_err(|_| format!("{what}: count {raw} overflows"))?;
        let need = n.checked_mul(elem_bytes.max(1));
        match need {
            Some(need) if need <= self.remaining() => Ok(n),
            _ => Err(format!(
                "{what}: count {n} x {elem_bytes} bytes exceeds the {} remaining",
                self.remaining()
            )),
        }
    }

    /// Reads a length-prefixed `u32` vector.
    pub fn vec_u32(&mut self, what: &str) -> Result<Vec<u32>, String> {
        let n = self.count(4, what)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u32(what)?);
        }
        Ok(v)
    }

    /// Reads a length-prefixed `u64` vector.
    pub fn vec_u64(&mut self, what: &str) -> Result<Vec<u64>, String> {
        let n = self.count(8, what)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u64(what)?);
        }
        Ok(v)
    }

    /// Reads a length-prefixed raw byte string.
    pub fn vec_u8(&mut self, what: &str) -> Result<Vec<u8>, String> {
        let n = self.count(1, what)?;
        Ok(self.take(n, what)?.to_vec())
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn vec_f64(&mut self, what: &str) -> Result<Vec<f64>, String> {
        let n = self.count(8, what)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.f64(what)?);
        }
        Ok(v)
    }

    /// Asserts the payload was consumed exactly.
    pub fn finish(&self, what: &str) -> Result<(), String> {
        if self.remaining() != 0 {
            return Err(format!("{what}: {} trailing bytes in section", self.remaining()));
        }
        Ok(())
    }
}

/// Writes one framed, checksummed section.
pub fn write_section(w: &mut impl Write, tag: u8, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&[tag])?;
    w.write_all(&(payload.len() as u64).to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    Ok(())
}

/// Reads one framed section, verifying its tag and checksum. `name` is the
/// human-readable section name used in diagnostics.
pub fn read_section(r: &mut impl Read, expect_tag: u8, name: &str) -> Result<Vec<u8>, String> {
    let mut head = [0u8; 9];
    r.read_exact(&mut head)
        .map_err(|e| format!("truncated snapshot: missing {name} section header ({e})"))?;
    let tag = head[0];
    if tag != expect_tag {
        return Err(format!(
            "unexpected section tag {tag:#04x} where {expect_tag:#04x} ({name}) was expected"
        ));
    }
    let len = u64::from_le_bytes([
        head[1], head[2], head[3], head[4], head[5], head[6], head[7], head[8],
    ]);
    // Pull the payload through `take`, so a lying length on a truncated
    // stream yields a short read (and a clean error) instead of a huge
    // up-front allocation.
    let mut payload = Vec::new();
    let got = r
        .by_ref()
        .take(len)
        .read_to_end(&mut payload)
        .map_err(|e| format!("i/o error reading {name} section: {e}"))?;
    if (got as u64) != len {
        return Err(format!("truncated snapshot: {name} section claims {len} bytes, {got} present"));
    }
    let mut crc_bytes = [0u8; 4];
    r.read_exact(&mut crc_bytes)
        .map_err(|e| format!("truncated snapshot: missing {name} section checksum ({e})"))?;
    let stored = u32::from_le_bytes(crc_bytes);
    let actual = crc32(&payload);
    if stored != actual {
        return Err(format!(
            "checksum mismatch in {name} section: stored {stored:#010x}, computed {actual:#010x}"
        ));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn section_round_trip() {
        let mut buf = Vec::new();
        write_section(&mut buf, 0x42, b"hello world").unwrap();
        let mut r = &buf[..];
        let payload = read_section(&mut r, 0x42, "test").unwrap();
        assert_eq!(payload, b"hello world");
        assert!(r.is_empty());
    }

    #[test]
    fn section_detects_corruption() {
        let mut buf = Vec::new();
        write_section(&mut buf, 0x42, b"hello world").unwrap();
        // Flip one payload byte: the checksum must catch it.
        let mut bad = buf.clone();
        bad[10] ^= 0x01;
        let err = read_section(&mut &bad[..], 0x42, "test").unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");
        // Truncate mid-payload.
        let err = read_section(&mut &buf[..12], 0x42, "test").unwrap_err();
        assert!(err.contains("truncated"), "{err}");
        // Wrong tag.
        let err = read_section(&mut &buf[..], 0x43, "test").unwrap_err();
        assert!(err.contains("unexpected section tag"), "{err}");
    }

    #[test]
    fn dec_rejects_absurd_counts() {
        let mut e = Enc::new();
        e.u64(u64::MAX);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(d.count(4, "test").is_err());
    }
}
