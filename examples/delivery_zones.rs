//! Delivery-zone coverage with *extended* geometries — the footnote-1
//! generalization of the paper: spatial vertices are rectangles, not
//! points.
//!
//! A restaurant group's couriers form a directed dispatch network (courier
//! -> courier handoffs), and each restaurant covers a rectangular delivery
//! zone. "Can dispatcher d serve an order at location X?" becomes a
//! RangeReach query whose spatial predicate is *intersection* with the
//! zones — answered by `RegionReach` through the same 3-D transformation.
//!
//! ```text
//! cargo run --release -p gsr-examples --bin delivery_zones
//! ```

use gsr_core::extensions::{RegionNetwork, RegionReach};
use gsr_geo::Rect;
use gsr_graph::GraphBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let dispatchers = 20u32;
    let couriers = 200u32;
    let restaurants = 300u32;
    let n = (dispatchers + couriers + restaurants) as usize;

    // Dispatchers hand off to couriers, couriers to each other, couriers
    // deliver for restaurants (courier -> restaurant edge).
    let mut b = GraphBuilder::new(n);
    for d in 0..dispatchers {
        for _ in 0..6 {
            b.add_edge(d, dispatchers + rng.gen_range(0..couriers));
        }
    }
    for _ in 0..400 {
        let a = dispatchers + rng.gen_range(0..couriers);
        let c = dispatchers + rng.gen_range(0..couriers);
        if a != c {
            b.add_edge(a, c);
        }
    }
    for r in 0..restaurants {
        for _ in 0..2 {
            let courier = dispatchers + rng.gen_range(0..couriers);
            b.add_edge(courier, dispatchers + couriers + r);
        }
    }

    // Restaurant delivery zones: rectangles of varying size over a 100x100
    // city.
    let mut zones: Vec<Option<Rect>> = vec![None; n];
    for r in 0..restaurants {
        let cx = rng.gen_range(5.0..95.0);
        let cy = rng.gen_range(5.0..95.0);
        let w = rng.gen_range(2.0..12.0);
        let h = rng.gen_range(2.0..12.0);
        zones[(dispatchers + couriers + r) as usize] =
            Some(Rect::new(cx - w / 2.0, cy - h / 2.0, cx + w / 2.0, cy + h / 2.0));
    }

    let net = RegionNetwork::new(b.build(), zones);
    let index = RegionReach::build(&net);

    println!("dispatch network: {dispatchers} dispatchers, {couriers} couriers, {restaurants} restaurants");

    // Can each dispatcher serve an order placed at the first restaurant's
    // address?
    let address = net
        .region(dispatchers + couriers)
        .expect("restaurant 0 has a zone")
        .center();
    let order = Rect::square(address, 6.0);
    let geometric: usize = (0..n as u32)
        .filter(|&v| net.region(v).is_some_and(|z| z.intersects(&order)))
        .count();
    let serving: Vec<u32> = (0..dispatchers).filter(|&d| index.query(d, &order)).collect();
    println!(
        "order at {address}: {geometric} zones overlap it; servable by {}/{} dispatchers",
        serving.len(),
        dispatchers
    );

    // Zone coverage report for the first dispatcher.
    let d0_zones = index.report(0, &Rect::new(0.0, 0.0, 100.0, 100.0));
    println!("dispatcher 0 can route to {} restaurant zones in total", d0_zones.len());
    let corner = Rect::new(0.0, 0.0, 15.0, 15.0);
    let corner_zones = index.report(0, &corner);
    println!(
        "  of those, {} have delivery zones overlapping the SW corner {corner}",
        corner_zones.len()
    );
}
