//! Infectious-disease monitoring (third motivating application of the
//! paper's introduction): "RangeReach can assist on monitoring and
//! understanding how [diseases] spread in specific areas through human
//! interaction".
//!
//! A contact-tracing graph is modeled as a geosocial network: directed
//! contact edges between people, and check-in edges to geo-referenced
//! venues. Given a set of index cases, the example asks which quarantine
//! zones each case's (transitive) contact chain touches — and compares the
//! incremental-update path: new contact edges arrive and the dynamic
//! interval labeling absorbs them without a rebuild.
//!
//! ```text
//! cargo run --release -p gsr-examples --bin epidemic_monitoring
//! ```

use gsr_core::methods::ThreeDReach;
use gsr_core::{PreparedNetwork, RangeReachIndex, SccSpatialPolicy};
use gsr_datagen::NetworkSpec;
use gsr_examples::print_network_summary;
use gsr_geo::Rect;
use gsr_reach::dynamic::DynamicIntervalLabeling;
use gsr_reach::Reachability;

fn main() {
    // A sparse directed contact network (Yelp-style analog: many small
    // SCCs — contact chains are mostly one-directional).
    let spec = NetworkSpec::yelp(0.15);
    let prep = PreparedNetwork::new(spec.generate());
    print_network_summary("Contact network", &prep);

    let index = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);

    // Quarantine zones: three rectangles around venue hot spots.
    let space = prep.space();
    let zones = [
        ("downtown", Rect::square(space.center(), space.width() * 0.15)),
        (
            "north-east",
            Rect::new(
                space.min_x + space.width() * 0.6,
                space.min_y + space.height() * 0.6,
                space.max_x,
                space.max_y,
            ),
        ),
        (
            "south-west",
            Rect::new(
                space.min_x,
                space.min_y,
                space.min_x + space.width() * 0.3,
                space.min_y + space.height() * 0.3,
            ),
        ),
    ];

    let index_cases: Vec<u32> = (0..5).map(|i| (i * 97) % spec.users as u32).collect();
    println!("\nZone exposure per index case (3DReach):");
    for &case in &index_cases {
        let exposed: Vec<&str> = zones
            .iter()
            .filter(|(_, zone)| index.query(case, zone))
            .map(|(name, _)| *name)
            .collect();
        println!(
            "  case {case}: {}",
            if exposed.is_empty() { "no zone exposure".to_string() } else { exposed.join(", ") }
        );
    }

    // Live updates: a new contact event links two previously unrelated
    // cases. The dynamic labeling (Section 8 "future work" extension)
    // absorbs the edge incrementally.
    println!("\nIncremental contact tracing on the condensation DAG:");
    let mut dynamic = DynamicIntervalLabeling::from_graph(prep.dag());
    let (a, b) = (prep.comp(index_cases[0]), prep.comp(index_cases[1]));
    let before = dynamic.reaches(a, b);
    match dynamic.add_edge(a, b) {
        Ok(()) => {
            println!(
                "  contact {a} -> {b}: reachable before = {before}, after = {}",
                dynamic.reaches(a, b)
            );
        }
        Err(e) => println!("  contact rejected ({e}); cases already mutually linked"),
    }
}
