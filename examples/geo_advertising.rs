//! Geo-advertising (second motivating application of the paper's
//! introduction): "RangeReach can help determine the best location to open
//! a shop or how to advertise an event based on users that have direct or
//! indirect previous activity in particular parts of a city".
//!
//! The example scans a grid of candidate shop locations over a
//! Foursquare-style network and, for each candidate cell, counts how many
//! influencer accounts can geosocially reach that cell — a batch of
//! `RangeReach` queries per cell. The two 3-D methods are compared on the
//! same batch.
//!
//! ```text
//! cargo run --release -p gsr-examples --bin geo_advertising
//! ```

use gsr_core::methods::{ThreeDReach, ThreeDReachRev};
use gsr_core::{PreparedNetwork, RangeReachIndex, SccSpatialPolicy};
use gsr_datagen::NetworkSpec;
use gsr_examples::print_network_summary;
use gsr_geo::Rect;
use std::time::Instant;

fn main() {
    let spec = NetworkSpec::foursquare(0.3);
    let prep = PreparedNetwork::new(spec.generate());
    print_network_summary("Follow network", &prep);

    let fwd = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
    let rev = ThreeDReachRev::build(&prep, SccSpatialPolicy::Replicate);

    // The 25 highest-out-degree accounts are our "influencers".
    let g = prep.network().graph();
    let mut users: Vec<u32> = (0..spec.users as u32).collect();
    users.sort_by_key(|&u| std::cmp::Reverse(g.out_degree(u)));
    let influencers = &users[..25];

    // Candidate shop locations: a 6x6 grid of cells.
    let space = prep.space();
    let (cw, ch) = (space.width() / 6.0, space.height() / 6.0);

    for (name, index) in [("3DReach", &fwd as &dyn RangeReachIndex), ("3DReach-REV", &rev)] {
        let start = Instant::now();
        let mut best = (0usize, 0usize, 0usize);
        for row in 0..6 {
            for col in 0..6 {
                let cell = Rect::new(
                    space.min_x + col as f64 * cw,
                    space.min_y + row as f64 * ch,
                    space.min_x + (col + 1) as f64 * cw,
                    space.min_y + (row + 1) as f64 * ch,
                );
                let audience =
                    influencers.iter().filter(|&&u| index.query(u, &cell)).count();
                if audience > best.0 {
                    best = (audience, col, row);
                }
            }
        }
        println!(
            "{name:<12}: best cell ({}, {}) reaches {}/25 influencers' activity \
             ({} queries in {:.1?})",
            best.1,
            best.2,
            best.0,
            36 * influencers.len(),
            start.elapsed()
        );
    }
}
