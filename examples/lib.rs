//! Shared helpers for the example binaries: small pretty-printing utilities
//! so each example can focus on the API it demonstrates.

use gsr_core::{PreparedNetwork, RangeReachIndex};
use gsr_geo::Rect;
use gsr_graph::VertexId;
use std::time::Instant;

/// Runs one query on every supplied method and prints a comparison line.
pub fn compare_methods(
    methods: &[Box<dyn RangeReachIndex>],
    v: VertexId,
    region: &Rect,
) {
    for idx in methods {
        let start = Instant::now();
        let answer = idx.query(v, region);
        let took = start.elapsed();
        println!(
            "  {:<13} -> {:<5}  ({:>8.1?}, index {} KB)",
            idx.name(),
            answer,
            took,
            idx.index_bytes() / 1000,
        );
    }
}

/// Prints the Table 3-style summary of a prepared network.
pub fn print_network_summary(title: &str, prep: &PreparedNetwork) {
    let s = prep.stats();
    println!(
        "{title}: {} users, {} venues, {} edges, {} SCCs (largest {})",
        s.users, s.venues, s.edges, s.sccs, s.largest_scc
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsr_core::methods::ThreeDReach;
    use gsr_core::{GeosocialNetwork, SccSpatialPolicy};
    use gsr_graph::GraphBuilder;

    #[test]
    fn helpers_do_not_panic() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        let net = GeosocialNetwork::new(
            b.build(),
            vec![None, Some(gsr_geo::Point::new(1.0, 1.0))],
        )
        .unwrap();
        let prep = PreparedNetwork::new(net);
        print_network_summary("toy", &prep);
        let methods: Vec<Box<dyn RangeReachIndex>> =
            vec![Box::new(ThreeDReach::build(&prep, SccSpatialPolicy::Replicate))];
        compare_methods(&methods, 0, &Rect::new(0.0, 0.0, 2.0, 2.0));
    }
}
