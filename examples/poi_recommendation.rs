//! Points-of-Interest recommendation (first motivating application of the
//! paper's introduction): "users can query for restaurants in a particular
//! area of the city that their friends or friends of their friends have
//! visited in the past".
//!
//! The example generates a Gowalla-style network, picks a few users, and
//! asks for each city district whether the user's (transitive) social
//! circle has activity there — one `RangeReach` query per district, served
//! by the 3DReach index.
//!
//! ```text
//! cargo run --release -p gsr-examples --bin poi_recommendation
//! ```

use gsr_core::methods::{NearestReach, ThreeDReach, ThreeDReporter};
use gsr_core::{PreparedNetwork, RangeReachIndex, SccSpatialPolicy};
use gsr_datagen::NetworkSpec;
use gsr_examples::print_network_summary;
use gsr_geo::{Point, Rect};
use std::time::Instant;

fn main() {
    let spec = NetworkSpec::gowalla(0.3);
    let prep = PreparedNetwork::new(spec.generate());
    print_network_summary("Check-in network", &prep);

    let build_start = Instant::now();
    let index = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
    println!(
        "3DReach index built in {:.1?} ({} KB)\n",
        build_start.elapsed(),
        index.index_bytes() / 1000
    );

    // Divide the city into a 4x4 grid of districts.
    let space = prep.space();
    let (dw, dh) = (space.width() / 4.0, space.height() / 4.0);
    let districts: Vec<(String, Rect)> = (0..16)
        .map(|i| {
            let (col, row) = (i % 4, i / 4);
            let rect = Rect::new(
                space.min_x + col as f64 * dw,
                space.min_y + row as f64 * dh,
                space.min_x + (col + 1) as f64 * dw,
                space.min_y + (row + 1) as f64 * dh,
            );
            (format!("district ({col},{row})"), rect)
        })
        .collect();

    // Recommend districts for three users of different connectivity.
    let g = prep.network().graph();
    let mut users: Vec<u32> = (0..spec.users as u32).collect();
    users.sort_by_key(|&u| std::cmp::Reverse(g.out_degree(u)));
    let picks = [users[0], users[users.len() / 2], users[users.len() - 1]];

    for user in picks {
        let start = Instant::now();
        let reachable: Vec<&str> = districts
            .iter()
            .filter(|(_, rect)| index.query(user, rect))
            .map(|(name, _)| name.as_str())
            .collect();
        println!(
            "user {user} (degree {}): social circle has activity in {}/16 districts ({:.1?})",
            g.out_degree(user),
            reachable.len(),
            start.elapsed()
        );
        if reachable.len() < 16 {
            println!("  reachable: {}", reachable.join(", "));
        }
    }

    // Concrete recommendations: the venues themselves, via the reporting
    // variant, plus the nearest reachable venue to the city centre.
    let reporter = ThreeDReporter::build(&prep);
    let nearest = NearestReach::build(&prep);
    let center = space.center();
    let downtown = Rect::square(center, space.width() / 10.0);
    println!("
Concrete recommendations for user {}:", picks[0]);
    let venues = reporter.report(picks[0], &downtown);
    println!("  {} venues with circle activity downtown ({downtown})", venues.len());
    for &v in venues.iter().take(5) {
        let p = prep.network().point(v).expect("venues are spatial");
        println!("    venue {v} at {p}");
    }
    if let Some((venue, point, dist)) = nearest.nearest(picks[0], &Point::new(center.x, center.y))
    {
        println!(
            "  nearest reachable venue to the centre: {venue} at {point} (distance {dist:.1})"
        );
    }
}
