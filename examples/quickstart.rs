//! Quickstart: build the paper's running example (Figure 1), index it with
//! every RangeReach method, and evaluate the two queries of Example 2.3.
//!
//! ```text
//! cargo run --release -p gsr-examples --bin quickstart
//! ```

use gsr_core::methods::{GeoReach, SocReach, SpaReachBfl, SpaReachInt, ThreeDReach, ThreeDReachRev};
use gsr_core::{paper_example, RangeReachIndex, SccSpatialPolicy};
use gsr_examples::{compare_methods, print_network_summary};

fn main() {
    // The 12-vertex geosocial network of the paper's Figure 1: vertices
    // a..l, spatial vertices e, f, h, i, l, and the query region R that
    // contains the points of e and h.
    let prep = paper_example::prepared();
    print_network_summary("Paper running example", &prep);

    let policy = SccSpatialPolicy::Replicate;
    let methods: Vec<Box<dyn RangeReachIndex>> = vec![
        Box::new(SpaReachBfl::build(&prep, policy)),
        Box::new(SpaReachInt::build(&prep, policy)),
        Box::new(GeoReach::build(&prep)),
        Box::new(SocReach::build(&prep)),
        Box::new(ThreeDReach::build(&prep, policy)),
        Box::new(ThreeDReachRev::build(&prep, policy)),
    ];

    let region = paper_example::query_region();

    // Example 2.3: a reaches the spatial vertices e and h inside R.
    println!("\nRangeReach(G, a, R) — expected TRUE:");
    compare_methods(&methods, paper_example::A, &region);

    // Example 2.3: c only reaches f and i, both outside R.
    println!("\nRangeReach(G, c, R) — expected FALSE:");
    compare_methods(&methods, paper_example::C, &region);

    // The interval labels behind the answers (Table 1 of the paper).
    let soc = SocReach::build(&prep);
    println!("\nInterval labels over the condensation (cf. Table 1):");
    for v in ["a", "c"] {
        let id = if v == "a" { paper_example::A } else { paper_example::C };
        let comp = prep.comp(id);
        println!(
            "  L({v}) = {:?} ({} descendants)",
            soc.labels().intervals(comp).collect::<Vec<_>>(),
            soc.labels().num_descendants(comp),
        );
    }
}
