//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no network access, so this vendored crate
//! provides the slice of criterion the workspace's benches use:
//! [`Criterion::benchmark_group`], `bench_function`/`bench_with_input`,
//! [`Bencher::iter`]/[`Bencher::iter_batched`], [`BenchmarkId`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is intentionally simple: each benchmark runs a short warm-up,
//! then `sample_size` timed samples, and reports the median per-iteration
//! time to stdout. There is no statistical analysis, plotting, or baseline
//! comparison — the goal is honest wall-clock numbers with zero
//! dependencies. When invoked with `--test` (as `cargo test` does for
//! `harness = false` benches), every benchmark body runs exactly once so CI
//! catches panics without paying measurement time.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let test_mode = self.test_mode;
        let group = self.benchmark_group("standalone");
        group.run(id, f, test_mode);
        group.finish();
        self
    }
}

/// A set of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total measurement budget for the benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let test_mode = self.criterion.test_mode;
        self.run(&id.into().0, f, test_mode);
        self
    }

    /// Registers and immediately runs one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let test_mode = self.criterion.test_mode;
        self.run(&id.into().0, |b| f(b, input), test_mode);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}

    fn run<F: FnMut(&mut Bencher)>(&self, id: &str, mut f: F, test_mode: bool) {
        let mut bencher = Bencher {
            mode: if test_mode {
                Mode::TestOnce
            } else {
                Mode::Measure {
                    sample_size: self.sample_size,
                    warm_up_time: self.warm_up_time,
                    measurement_time: self.measurement_time,
                }
            },
            samples: Vec::new(),
        };
        f(&mut bencher);
        if test_mode {
            println!("{}/{}: ok (test mode)", self.name, id);
            return;
        }
        bencher.samples.sort_unstable_by(f64::total_cmp);
        let median = bencher
            .samples
            .get(bencher.samples.len() / 2)
            .copied()
            .unwrap_or(0.0);
        println!("{}/{}: median {}", self.name, id, format_time(median));
    }
}

enum Mode {
    TestOnce,
    Measure {
        sample_size: usize,
        warm_up_time: Duration,
        measurement_time: Duration,
    },
}

/// Runs the benchmark body and records per-iteration timings.
pub struct Bencher {
    mode: Mode,
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::TestOnce => {
                black_box(routine());
            }
            Mode::Measure {
                sample_size,
                warm_up_time,
                measurement_time,
            } => {
                // Warm up and estimate a per-sample iteration count.
                let warm_start = Instant::now();
                let mut warm_iters = 0u64;
                while warm_start.elapsed() < warm_up_time || warm_iters == 0 {
                    black_box(routine());
                    warm_iters += 1;
                    if warm_iters >= 1_000_000 {
                        break;
                    }
                }
                let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
                let budget = measurement_time.as_secs_f64() / sample_size as f64;
                let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
                for _ in 0..sample_size {
                    let t = Instant::now();
                    for _ in 0..iters_per_sample {
                        black_box(routine());
                    }
                    self.samples
                        .push(t.elapsed().as_secs_f64() / iters_per_sample as f64);
                }
            }
        }
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        match self.mode {
            Mode::TestOnce => {
                black_box(routine(setup()));
            }
            Mode::Measure { sample_size, .. } => {
                // One iteration per sample: batched inputs are typically
                // large, so re-estimating an inner loop is not worth it.
                black_box(routine(setup())); // warm-up
                for _ in 0..sample_size {
                    let input = setup();
                    let t = Instant::now();
                    black_box(routine(input));
                    self.samples.push(t.elapsed().as_secs_f64());
                }
            }
        }
    }
}

/// Batch-size hint for [`Bencher::iter_batched`]; the shim treats all
/// variants identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Input is small relative to the routine's work.
    SmallInput,
    /// Input is large; one invocation per batch.
    LargeInput,
    /// Input size is unknown.
    PerIteration,
}

/// A benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Identifier that is just the parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group: `criterion_group!(benches, f1, f2)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point: `criterion_main!(benches)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("m", "x=1").0, "m/x=1");
        assert_eq!(BenchmarkId::from_parameter(42).0, "42");
    }

    #[test]
    fn group_runs_bodies_in_test_mode() {
        let mut c = Criterion { test_mode: true };
        let mut ran = 0;
        let mut group = c.benchmark_group("g");
        group.sample_size(10).warm_up_time(Duration::from_millis(1));
        group.bench_function("a", |b| b.iter(|| ran += 1));
        group.bench_with_input(BenchmarkId::new("b", 1), &5usize, |b, &x| {
            b.iter(|| ran += x)
        });
        group.finish();
        assert_eq!(ran, 6);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion { test_mode: true };
        let mut setups = 0;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
                BatchSize::LargeInput,
            )
        });
        assert_eq!(setups, 1);
    }
}
