//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no network access, so this vendored crate
//! reimplements the slice of proptest the workspace uses: the [`Strategy`]
//! trait with `prop_map`/`prop_flat_map`, range/tuple/array/string
//! strategies, `prop::collection::vec`, `prop::option`, [`prelude::Just`],
//! `any::<T>()`, and the [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`]
//! macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its generated inputs and the
//!   case seed, but is not minimized.
//! * **Deterministic.** Case seeds derive from the test name and case index
//!   (overridable via `PROPTEST_SEED`), so every run explores the same
//!   inputs — CI failures always reproduce locally.
//! * The string strategy supports the regex subset the workspace uses:
//!   literals, `[...]` classes (ranges and literal chars), `(a|b|c)`
//!   alternation of literal branches, and postfix `?` / `{m,n}`.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
}

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|i| self[i].generate(rng))
    }
}

/// `&str` strategies generate strings matching a regex subset; see the
/// crate docs for the supported syntax.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        string::generate_matching(self, rng)
    }
}

/// Types with a canonical "arbitrary" strategy.
pub trait Arbitrary: Sized + Debug {
    /// The strategy [`any`] returns.
    fn arbitrary() -> ArbitraryOf<Self>;
}

/// Strategy returned by [`any`].
pub struct ArbitraryOf<T> {
    gen: fn(&mut TestRng) -> T,
}

impl<T: Debug> Strategy for ArbitraryOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> ArbitraryOf<Self> {
                ArbitraryOf { gen: |rng| rng.next_u64() as $t }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary() -> ArbitraryOf<Self> {
        ArbitraryOf { gen: |rng| rng.next_u64() & 1 == 1 }
    }
}

impl Arbitrary for f64 {
    fn arbitrary() -> ArbitraryOf<Self> {
        // Finite, broadly ranged doubles.
        ArbitraryOf {
            gen: |rng| {
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                (unit - 0.5) * 2e9
            },
        }
    }
}

use rand::RngCore;

/// The canonical strategy for `T` — `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> ArbitraryOf<T> {
    T::arbitrary()
}

/// Collection and combinator strategies, mirroring `proptest::prop`.
pub mod prop {
    /// Re-export so `prop::collection::vec` resolves.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};
        use rand::Rng;

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng.gen_range(self.size.lo..=self.size.hi);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, 0..100)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }
    }

    /// `Option` strategies, mirroring `proptest::option`.
    pub mod option {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Strategy yielding `Some` with a fixed probability.
        pub struct OptionStrategy<S> {
            inner: S,
            some_probability: f64,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                rng.gen_bool(self.some_probability).then(|| self.inner.generate(rng))
            }
        }

        /// `Some` three times out of four (upstream's default weighting).
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner, some_probability: 0.75 }
        }

        /// `Some` with probability `p`.
        pub fn weighted<S: Strategy>(p: f64, inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner, some_probability: p.clamp(0.0, 1.0) }
        }
    }

    /// Sampling helpers (subset).
    pub mod sample {}
}

/// A length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Smallest length, inclusive.
    pub lo: usize,
    /// Largest length, inclusive.
    pub hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

mod string {
    //! Generation of strings matching a small regex subset.

    use super::TestRng;
    use rand::Rng;

    enum Atom {
        Literal(char),
        Class(Vec<(char, char)>),
        Alternation(Vec<String>),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces: Vec<Piece> = Vec::new();
        let mut i = 0usize;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"))
                        + i;
                    let mut ranges = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            ranges.push((chars[j], chars[j + 2]));
                            j += 3;
                        } else {
                            ranges.push((chars[j], chars[j]));
                            j += 1;
                        }
                    }
                    i = close + 1;
                    Atom::Class(ranges)
                }
                '(' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ')')
                        .unwrap_or_else(|| panic!("unterminated group in {pattern:?}"))
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    let branches = body.split('|').map(str::to_string).collect();
                    i = close + 1;
                    Atom::Alternation(branches)
                }
                '\\' => {
                    i += 1;
                    let c = *chars
                        .get(i)
                        .unwrap_or_else(|| panic!("dangling escape in {pattern:?}"));
                    i += 1;
                    Atom::Literal(c)
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Postfix repetition.
            let (min, max) = match chars.get(i) {
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .unwrap_or_else(|| panic!("unterminated repeat in {pattern:?}"))
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    let (lo, hi) = match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.parse().expect("repeat lower bound"),
                            hi.parse().expect("repeat upper bound"),
                        ),
                        None => {
                            let n = body.parse().expect("repeat count");
                            (n, n)
                        }
                    };
                    i = close + 1;
                    (lo, hi)
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let reps = rng.gen_range(piece.min..=piece.max);
            for _ in 0..reps {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
                        out.push(
                            char::from_u32(rng.gen_range(lo as u32..=hi as u32))
                                .unwrap_or(lo),
                        );
                    }
                    Atom::Alternation(branches) => {
                        out.push_str(&branches[rng.gen_range(0..branches.len())]);
                    }
                }
            }
        }
        out
    }
}

/// Test-runner plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use super::TestRng;
    use rand::SeedableRng;

    /// Why one generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed.
        Fail(String),
        /// The case asked to be discarded (unused by the shim, kept for
        /// API compatibility).
        Reject(String),
    }

    impl TestCaseError {
        /// An assertion failure with the given message.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A discarded case.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            }
        }
    }

    /// Result type of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` generated inputs.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xCBF29CE484222325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001B3);
        }
        h
    }

    /// Runs `case` for every generated input; panics (failing the enclosing
    /// `#[test]`) on the first case that returns an error or panics.
    pub fn run<F>(test_name: &str, config: &Config, mut case: F)
    where
        F: FnMut(&mut TestRng) -> (String, TestCaseResult),
    {
        let base = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s.parse::<u64>().unwrap_or_else(|_| fnv1a(s.as_bytes())),
            Err(_) => fnv1a(test_name.as_bytes()),
        };
        for index in 0..config.cases {
            let seed = base ^ (index as u64).wrapping_mul(0x9E3779B97F4A7C15);
            let mut rng = TestRng::seed_from_u64(seed);
            let (inputs, outcome) = case(&mut rng);
            match outcome {
                Ok(()) | Err(super::test_runner::TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(reason)) => panic!(
                    "proptest case {index} of {test_name} failed: {reason}\n\
                     inputs: {inputs}\n\
                     reproduce with PROPTEST_SEED={base}"
                ),
            }
        }
    }
}

/// Everything a proptest test module needs.
pub mod prelude {
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{any, prop, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests; see the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run(stringify!($name), &__config, |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                let __inputs = {
                    let mut s = String::new();
                    $(
                        s.push_str(concat!(stringify!($arg), " = "));
                        s.push_str(&format!("{:?}, ", $arg));
                    )+
                    s
                };
                let __outcome: $crate::test_runner::TestCaseResult = (|| {
                    { $body }
                    Ok(())
                })();
                (__inputs, __outcome)
            });
        }
    )*};
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn string_strategy_matches_patterns() {
        let mut rng = crate::TestRng::seed_from_u64(3);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"(nan|inf|-inf)", &mut rng);
            assert!(["nan", "inf", "-inf"].contains(&s.as_str()), "{s:?}");
            let t = crate::Strategy::generate(&"[a-c]{2,4}x?", &mut rng);
            assert!(t.len() >= 2 && t.len() <= 5, "{t:?}");
            assert!(t.trim_end_matches('x').chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::TestRng::seed_from_u64(9);
        for _ in 0..100 {
            let v = crate::Strategy::generate(
                &prop::collection::vec(0u32..5, 2..7),
                &mut rng,
            );
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs(x in 0usize..10, pair in (0..5u32, -1.0..1.0f64)) {
            prop_assert!(x < 10);
            prop_assert!(pair.0 < 5);
            prop_assert!((-1.0..1.0).contains(&pair.1));
        }

        #[test]
        fn flat_map_and_just_compose(v in (1usize..8).prop_flat_map(|n| {
            (Just(n), prop::collection::vec(0..n, 1..4))
        })) {
            let (n, xs) = v;
            prop_assert!(xs.iter().all(|&x| x < n));
        }
    }

    // The macro expands the inner function with its own #[test] attribute,
    // which is unnameable from the harness here — expected, we call it by
    // hand to check the failure path.
    #[allow(unnameable_test_items)]
    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[test]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
