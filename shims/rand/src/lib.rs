//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access, so this tiny vendored crate
//! provides the slice of `rand` the workspace actually uses: [`SeedableRng`],
//! the [`Rng`] extension trait with `gen_range`/`gen_bool`/`gen`, and
//! [`rngs::StdRng`]/[`rngs::SmallRng`] backed by xoshiro256++ seeded through
//! splitmix64. Streams are deterministic per seed (they do not match the
//! upstream `rand` streams bit-for-bit, which nothing in this workspace
//! relies on).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A type that can be sampled uniformly from a range by an [`Rng`].
pub trait SampleUniform: Sized + Copy {
    /// Uniform sample from `[lo, hi)`; `hi` is exclusive unless
    /// `inclusive` is set.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = (hi_w - lo_w + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "cannot sample from empty range");
                // Multiply-shift bounded sampling (bias < 2^-64 per draw:
                // negligible for simulation workloads).
                let x = rng.next_u64() as u128;
                let v = (x * span) >> 64;
                (lo_w + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($t:ty, $mantissa_bits:expr) => {
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo <= hi, "cannot sample from inverted range");
                let unit = (rng.next_u64() >> (64 - $mantissa_bits)) as $t
                    / (1u64 << $mantissa_bits) as $t;
                let v = lo + (hi - lo) * unit;
                // Guard against rounding up to the exclusive bound.
                if v >= hi && lo < hi {
                    lo
                } else {
                    v
                }
            }
        }
    };
}

impl_sample_uniform_float!(f64, 53);
impl_sample_uniform_float!(f32, 24);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(rng, lo, hi, true)
    }
}

/// Values producible by [`Rng::gen`].
pub trait Standard {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range, e.g. `rng.gen_range(0..10)` or
    /// `rng.gen_range(0.0..=1.0)`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped into `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// A random value of a supported type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A random generator seedable from fixed-width state.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64` via splitmix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the shim's stand-in for `rand`'s `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state would be a fixed point; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    /// Alias — the shim uses the same generator for small and standard RNGs.
    pub type SmallRng = StdRng;
}

/// Creates an RNG seeded from process entropy (address-space layout and
/// time); good enough for the non-reproducible convenience paths.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5EED);
    rngs::StdRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
        let mut c = StdRng::seed_from_u64(8);
        let differs = (0..100).any(|_| {
            a.gen_range(0..1_000_000usize) != c.gen_range(0..1_000_000usize)
        });
        assert!(differs, "different seeds must give different streams");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..=5u32);
            assert!(y <= 5);
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let g = rng.gen_range(1.0..=1.0f64);
            assert!((1.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_probabilities() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "suspicious coin: {heads}");
    }

    #[test]
    fn singleton_integer_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(rng.gen_range(4..=4usize), 4);
        }
    }
}
