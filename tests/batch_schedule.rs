//! Scheduling and caching must be invisible to query semantics.
//!
//! Locality-scheduled batches (any thread count) and the server-side
//! result cache are performance features: the answers — and for batches
//! the aggregated work counters — must be bit-identical to plain
//! input-order execution, which itself must agree with the online BFS
//! oracle, on both SCC spatial policies.

use gsr_core::methods::{SpaReachBfl, ThreeDReach};
use gsr_core::{BatchExecutor, PreparedNetwork, RangeReachIndex, SccSpatialPolicy};
use gsr_datagen::workload::WorkloadGen;
use gsr_datagen::NetworkSpec;
use gsr_graph::stats::DegreeBucket;
use gsr_server::ResultCache;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const SEEDS: [u64; 3] = [1, 42, 0xD0_5E_ED];

fn datasets() -> Vec<PreparedNetwork> {
    vec![
        PreparedNetwork::new(NetworkSpec::weeplaces(0.06).generate()),
        PreparedNetwork::new(NetworkSpec::gowalla(0.03).generate()),
    ]
}

fn indexes(prep: &PreparedNetwork, policy: SccSpatialPolicy) -> Vec<Box<dyn RangeReachIndex>> {
    vec![Box::new(SpaReachBfl::build(prep, policy)), Box::new(ThreeDReach::build(prep, policy))]
}

#[test]
fn locality_schedule_agrees_with_plain_and_bfs_on_both_policies() {
    for prep in datasets() {
        let bucket = DegreeBucket::PAPER_BUCKETS[DegreeBucket::DEFAULT_INDEX];
        let gen = WorkloadGen::new(&prep);
        for policy in [SccSpatialPolicy::Replicate, SccSpatialPolicy::Mbr] {
            for idx in indexes(&prep, policy) {
                for seed in SEEDS {
                    let w = gen.extent_degree(5.0, bucket, 150, seed);
                    let (plain, plain_cost) =
                        BatchExecutor::new(1).run_with_cost(idx.as_ref(), &w.queries);
                    // The unscheduled batch must match the online oracle.
                    for (i, (v, r)) in w.queries.iter().enumerate() {
                        assert_eq!(
                            plain[i],
                            prep.range_reach_bfs(*v, r),
                            "{}{} seed={seed} query {i} disagrees with BFS",
                            idx.name(),
                            policy.suffix()
                        );
                    }
                    // Locality scheduling must be bit-identical at any
                    // thread count: same answers, same total cost.
                    for threads in THREAD_COUNTS {
                        let (sched, sched_cost) = BatchExecutor::new(threads)
                            .with_locality_scheduling()
                            .run_with_cost(idx.as_ref(), &w.queries);
                        assert_eq!(
                            sched,
                            plain,
                            "{}{} seed={seed} threads={threads}: answers changed",
                            idx.name(),
                            policy.suffix()
                        );
                        assert_eq!(
                            sched_cost,
                            plain_cost,
                            "{}{} seed={seed} threads={threads}: cost changed",
                            idx.name(),
                            policy.suffix()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn result_cache_agrees_with_plain_execution_on_both_policies() {
    for prep in datasets() {
        let bucket = DegreeBucket::PAPER_BUCKETS[DegreeBucket::DEFAULT_INDEX];
        let gen = WorkloadGen::new(&prep);
        for policy in [SccSpatialPolicy::Replicate, SccSpatialPolicy::Mbr] {
            for idx in indexes(&prep, policy) {
                let w = gen.extent_degree(5.0, bucket, 120, 7);
                // Duplicate each query back-to-back so the cache serves
                // real hits even while 120 distinct keys thrash a
                // 32-entry LRU (which exercises the eviction path).
                let repeated: Vec<_> = w.queries.iter().flat_map(|q| [*q, *q]).collect();
                let cache = ResultCache::new(32);
                for (i, (v, r)) in repeated.iter().enumerate() {
                    let expect = idx.query(*v, r);
                    let got = match cache.get(*v, r) {
                        Some(hit) => hit,
                        None => {
                            let answer = idx.query(*v, r);
                            cache.insert(*v, r, answer);
                            answer
                        }
                    };
                    assert_eq!(
                        got,
                        expect,
                        "{}{} query {i}: cached answer diverged",
                        idx.name(),
                        policy.suffix()
                    );
                }
                let stats = cache.stats();
                assert_eq!(stats.hits + stats.misses, repeated.len() as u64);
                assert!(stats.hits > 0, "repeated workload must produce cache hits");
                assert!(stats.evictions > 0, "a 32-entry cache over 120 keys must evict");
            }
        }
    }
}
