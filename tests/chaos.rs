//! End-to-end chaos drill at scale 0: every attack scenario of
//! `gsr_bench::chaos` must end with all attempts handled as specified —
//! typed refusals for malformed/hostile input, oracle-correct answers
//! under concurrent hot reloads, and no snapshot corruption at any
//! kill-during-save truncation point.

use gsr_bench::chaos::{chaos_json, run_experiment, ChaosOptions};
use gsr_bench::Config;

fn drill_config() -> (Config, ChaosOptions) {
    let cfg = Config { scale: 0.0, queries: 20, seed: 17, threads: 1 };
    // Smaller than the repro defaults so the suite stays fast on one CPU,
    // but every scenario still mounts multiple concurrent attacks.
    let opts = ChaosOptions { attackers: 4, kill_points: 25, reloads: 3, clients: 2 };
    (cfg, opts)
}

#[test]
fn every_chaos_scenario_survives_at_scale_zero() {
    let (cfg, opts) = drill_config();
    let (_table, scenarios) = run_experiment(&cfg, &opts).expect("chaos drill must run");

    let expected = [
        "oversize-line",
        "slow-loris",
        "idle-reap",
        "torn-pipeline",
        "conn-flood",
        "queue-shed",
        "reload-storm",
        "kill-during-save",
        "snapshot-corruption",
    ];
    let names: Vec<&str> = scenarios.iter().map(|s| s.name).collect();
    assert_eq!(names, expected, "the drill must mount every scenario, in order");

    for s in &scenarios {
        assert!(s.attempts > 0, "{}: no attacks mounted", s.name);
        assert!(
            s.passed(),
            "{}: {}/{} handled — {}",
            s.name,
            s.handled,
            s.attempts,
            s.detail
        );
    }
}

#[test]
fn chaos_json_reports_every_scenario_with_a_verdict() {
    let (cfg, opts) = drill_config();
    let (_table, scenarios) = run_experiment(&cfg, &opts).expect("chaos drill must run");
    let json = chaos_json(&cfg, &opts, &scenarios);

    assert!(json.starts_with("{\n"), "{json}");
    assert!(json.ends_with("}\n"), "{json}");
    assert!(json.contains("\"experiment\": \"chaos\""), "{json}");
    for s in &scenarios {
        assert!(json.contains(&format!("\"name\": \"{}\"", s.name)), "{json}");
    }
    assert!(json.contains("\"passed\": true"), "{json}");
    assert!(!json.contains("\"passed\": false"), "a failing verdict leaked into the artifact");
}
