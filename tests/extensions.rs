//! Integration tests for the extension features: reporting/counting,
//! nearest-reachable, and the dynamic 3DReach index — all validated on
//! random cyclic networks against brute force.

use gsr_core::methods::{report_bfs, DynamicThreeDReach, NearestReach, ThreeDReach, ThreeDReporter};
use gsr_core::{GeosocialNetwork, PreparedNetwork, RangeReachIndex, SccSpatialPolicy};
use gsr_geo::{Point, Rect};
use gsr_graph::{GraphBuilder, VertexId};
use gsr_tests::{random_network, random_regions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn reporter_matches_bfs_on_random_networks() {
    for seed in 0..5 {
        let net = random_network(120, 420, 0.4, 700 + seed);
        let prep = PreparedNetwork::new(net);
        let reporter = ThreeDReporter::build(&prep);
        for region in random_regions(10, seed) {
            for v in (0..120).step_by(11) {
                let expected = report_bfs(&prep, v, &region);
                assert_eq!(reporter.report(v, &region), expected, "v={v} region={region}");
                assert_eq!(reporter.count(v, &region), expected.len());
                assert_eq!(reporter.exists(v, &region), !expected.is_empty());
            }
        }
    }
}

#[test]
fn nearest_reach_matches_brute_force_on_random_networks() {
    for seed in 0..5 {
        let net = random_network(100, 350, 0.5, 300 + seed);
        let prep = PreparedNetwork::new(net);
        let idx = NearestReach::build(&prep);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..12 {
            let target = Point::new(rng.gen_range(-20.0..120.0), rng.gen_range(-20.0..120.0));
            for v in (0..100).step_by(13) {
                // Brute force over the full report of the whole space.
                let everything = Rect::new(-1e9, -1e9, 1e9, 1e9);
                let reachable = report_bfs(&prep, v, &everything);
                let expected = reachable
                    .iter()
                    .map(|&u| prep.network().point(u).unwrap().distance(&target))
                    .fold(f64::INFINITY, f64::min);
                match idx.nearest(v, &target) {
                    None => assert!(reachable.is_empty(), "v={v}: missing answer"),
                    Some((_, _, d)) => {
                        assert!(
                            (d - expected).abs() < 1e-9,
                            "v={v} target={target}: {d} vs {expected}"
                        );
                    }
                }
            }
        }
    }
}

/// Streams random updates into the dynamic index and compares against a
/// full rebuild after every batch.
#[test]
fn dynamic_index_tracks_rebuilds_through_random_update_streams() {
    let mut rng = StdRng::seed_from_u64(99);

    // Seed network: a small cyclic geosocial network.
    let seed_net = random_network(40, 120, 0.4, 1234);
    let mut edges: Vec<(VertexId, VertexId)> = seed_net.graph().edges().collect();
    let mut points: Vec<Option<Point>> =
        (0..40).map(|v| seed_net.point(v as VertexId)).collect();
    let prep = PreparedNetwork::new(seed_net);
    let mut dynamic = DynamicThreeDReach::build(&prep);

    for _batch in 0..4 {
        // A few new users, venues and edges per batch.
        for _ in 0..3 {
            let u = dynamic.add_user();
            assert_eq!(u as usize, points.len());
            points.push(None);
        }
        for _ in 0..3 {
            let p = Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0));
            let v = dynamic.add_venue(p);
            assert_eq!(v as usize, points.len());
            points.push(Some(p));
        }
        for _ in 0..10 {
            let from = rng.gen_range(0..points.len()) as VertexId;
            let to = rng.gen_range(0..points.len()) as VertexId;
            if from == to {
                continue;
            }
            if dynamic.add_edge(from, to).is_ok() {
                edges.push((from, to));
            }
            // Rejected edges (would merge SCCs) are simply skipped.
        }

        // Full rebuild from the accumulated state.
        let mut b = GraphBuilder::new(points.len());
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let rebuilt = PreparedNetwork::new(
            GeosocialNetwork::new(b.build(), points.clone()).unwrap(),
        );
        let reference = ThreeDReach::build(&rebuilt, SccSpatialPolicy::Replicate);

        for region in random_regions(8, 17) {
            for v in 0..points.len() as VertexId {
                assert_eq!(
                    dynamic.query(v, &region),
                    reference.query(v, &region),
                    "v={v} region={region} after batch"
                );
            }
        }
    }
}

#[test]
fn dynamic_rejects_exactly_the_cycle_closing_edges() {
    let net = random_network(30, 100, 0.3, 555);
    let prep = PreparedNetwork::new(net);
    let dynamic = DynamicThreeDReach::build(&prep);
    let reporter = ThreeDReporter::build(&prep);
    let everything = Rect::new(-1e9, -1e9, 1e9, 1e9);

    for from in 0..30u32 {
        for to in 0..30u32 {
            if from == to || prep.comp(from) == prep.comp(to) {
                continue;
            }
            // Re-derive expectation: adding (from, to) cycles iff `to`
            // already reaches `from`.
            let to_reaches_from = {
                // reuse the reporter's labeling indirectly: BFS ground truth
                gsr_reach::bfs::reaches_bfs(prep.dag(), prep.comp(to), prep.comp(from))
            };
            let mut probe = dynamic.clone();
            assert_eq!(
                probe.add_edge(from, to).is_err(),
                to_reaches_from,
                "edge ({from},{to})"
            );
        }
    }
    // Smoke: reporter unaffected by the probing (it is a separate index).
    assert!(reporter.count(0, &everything) <= 30);
}
