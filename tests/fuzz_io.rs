//! Failure-injection tests: the network loader must never panic, whatever
//! bytes it is fed, and must produce precise errors for malformed input.

use gsr_datagen::faults::{malformed_corpus, ExpectedFailure, FailingReader};
use gsr_datagen::io::{read_network, read_network_with, write_network, LoadError, LoadLimits};
use proptest::prelude::*;

/// A small id cap so fuzz inputs that happen to contain a large integer
/// cannot ask the loader for gigabytes of memory.
const FUZZ_LIMITS: LoadLimits = LoadLimits { max_vertices: 4096 };

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes: reading may fail, but never panics, and any
    /// successfully parsed network is internally consistent.
    #[test]
    fn loader_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        match read_network_with(bytes.as_slice(), FUZZ_LIMITS) {
            Ok(net) => {
                prop_assert!(net.num_spatial() <= net.num_vertices());
                prop_assert!(net.num_vertices() <= FUZZ_LIMITS.max_vertices as usize);
            }
            Err(LoadError::Parse { line, .. }) => prop_assert!(line >= 1),
            Err(_) => {}
        }
    }

    /// Arbitrary *line-structured* text: closer to the real format, so the
    /// parser's token paths all get exercised.
    #[test]
    fn loader_survives_plausible_garbage(
        lines in prop::collection::vec("[VPE#]? ?[-0-9a-z.]{0,12} [-0-9.]{0,8} [-0-9.]{0,8}", 0..60),
    ) {
        let text = lines.join("\n");
        if let Ok(net) = read_network_with(text.as_bytes(), FUZZ_LIMITS) {
            prop_assert!(net.num_vertices() <= FUZZ_LIMITS.max_vertices as usize);
        }
    }

    /// The loader fed a reader that dies after a random byte budget must
    /// report `LoadError::Io`, never panic or fabricate a network.
    #[test]
    fn truncated_streams_surface_io_errors(budget in 0usize..256) {
        let text = "# net\nV 6\nP 2 1.0 2.0\nP 3 4.0 5.0\nE 0 1\nE 1 2\nE 4 5\nE 5 3\n";
        // Only budgets that cut the stream short can fault.
        let budget = budget % text.len();
        let reader = FailingReader::new(text.as_bytes(), budget);
        match read_network(reader) {
            Err(LoadError::Io(_)) => {}
            other => prop_assert!(false, "budget {}: expected Io, got ok={}", budget, other.is_ok()),
        }
    }

    /// Any network that passes validation round-trips bit-exactly.
    #[test]
    fn valid_networks_round_trip(
        n in 1usize..30,
        edges in prop::collection::vec((0u32..30, 0u32..30), 0..80),
        points in prop::collection::vec(
            prop::option::of((-1e5..1e5f64, -1e5..1e5f64)),
            0..30,
        ),
    ) {
        use gsr_core::GeosocialNetwork;
        use gsr_geo::Point;
        use gsr_graph::GraphBuilder;

        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u % n as u32, v % n as u32);
        }
        let g = b.build();
        let mut pts: Vec<Option<Point>> =
            points.into_iter().map(|p| p.map(|(x, y)| Point::new(x, y))).collect();
        pts.resize(g.num_vertices(), None);
        let net = GeosocialNetwork::new(g, pts).unwrap();

        let mut buf = Vec::new();
        write_network(&net, &mut buf).unwrap();
        let loaded = read_network(buf.as_slice()).unwrap();
        prop_assert_eq!(loaded.num_vertices(), net.num_vertices());
        prop_assert_eq!(loaded.graph().num_edges(), net.graph().num_edges());
        for v in net.graph().vertices() {
            prop_assert_eq!(loaded.point(v), net.point(v));
            prop_assert_eq!(loaded.graph().out_neighbors(v), net.graph().out_neighbors(v));
        }
    }

    /// NaN and infinite coordinates are rejected at network construction,
    /// and the loader surfaces that as a Network error rather than panicking.
    #[test]
    fn non_finite_points_are_rejected(bad in "(nan|inf|-inf)") {
        let text = format!("V 1\nP 0 {bad} 1.0\n");
        match read_network(text.as_bytes()) {
            Err(LoadError::Network(_)) => {}
            other => prop_assert!(false, "expected Network error, got {:?}", other.is_ok()),
        }
    }
}

/// Every entry in the fault-injection corpus is rejected with the typed
/// error it declares — the contract the CI fault job enforces.
#[test]
fn malformed_corpus_is_rejected_with_declared_variants() {
    for case in malformed_corpus() {
        match (read_network(case.text.as_bytes()), case.expected) {
            (Err(LoadError::Parse { line, .. }), ExpectedFailure::Parse) => {
                assert!(line >= 1, "case {:?}", case.name);
            }
            (Err(LoadError::Network(_)), ExpectedFailure::Network) => {}
            (outcome, expected) => panic!(
                "case {:?}: expected {expected:?}, got ok={}",
                case.name,
                outcome.is_ok()
            ),
        }
    }
}

/// Ids above the cap must be rejected instead of growing the network, and
/// duplicate `P` lines must not silently overwrite points.
#[test]
fn loader_hardening_rules_hold() {
    let over_cap = format!("E 0 {}\n", FUZZ_LIMITS.max_vertices);
    assert!(matches!(
        read_network_with(over_cap.as_bytes(), FUZZ_LIMITS),
        Err(LoadError::Parse { line: 1, .. })
    ));
    let at_cap = format!("E 0 {}\n", FUZZ_LIMITS.max_vertices - 1);
    let net = read_network_with(at_cap.as_bytes(), FUZZ_LIMITS).unwrap();
    assert_eq!(net.num_vertices(), FUZZ_LIMITS.max_vertices as usize);

    let dup = "V 4\nP 1 0 0\nP 1 9 9\n";
    assert!(matches!(read_network(dup.as_bytes()), Err(LoadError::Parse { line: 3, .. })));
}

/// A real generated network cut at every early byte position still maps
/// to `LoadError::Io` (no panics, no partial networks).
#[test]
fn generated_network_truncations_fail_cleanly() {
    let mut text = Vec::new();
    write_network(&gsr_datagen::NetworkSpec::foursquare(0.01).generate(), &mut text).unwrap();
    for budget in (0..text.len().min(400)).step_by(37) {
        let reader = FailingReader::new(text.as_slice(), budget);
        assert!(
            matches!(read_network(reader), Err(LoadError::Io(_))),
            "budget {budget} should surface Io"
        );
    }
}
