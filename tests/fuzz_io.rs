//! Failure-injection tests: the network loader must never panic, whatever
//! bytes it is fed, and must produce precise errors for malformed input.

use gsr_datagen::io::{read_network, write_network, LoadError};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes: reading may fail, but never panics, and any
    /// successfully parsed network is internally consistent.
    #[test]
    fn loader_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        match read_network(bytes.as_slice()) {
            Ok(net) => {
                prop_assert!(net.num_spatial() <= net.num_vertices());
            }
            Err(LoadError::Parse { line, .. }) => prop_assert!(line >= 1),
            Err(_) => {}
        }
    }

    /// Arbitrary *line-structured* text: closer to the real format, so the
    /// parser's token paths all get exercised.
    #[test]
    fn loader_survives_plausible_garbage(
        lines in prop::collection::vec("[VPE#]? ?[-0-9a-z.]{0,12} [-0-9.]{0,8} [-0-9.]{0,8}", 0..60),
    ) {
        let text = lines.join("\n");
        let _ = read_network(text.as_bytes()); // must not panic
    }

    /// Any network that passes validation round-trips bit-exactly.
    #[test]
    fn valid_networks_round_trip(
        n in 1usize..30,
        edges in prop::collection::vec((0u32..30, 0u32..30), 0..80),
        points in prop::collection::vec(
            prop::option::of((-1e5..1e5f64, -1e5..1e5f64)),
            0..30,
        ),
    ) {
        use gsr_core::GeosocialNetwork;
        use gsr_geo::Point;
        use gsr_graph::GraphBuilder;

        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u % n as u32, v % n as u32);
        }
        let g = b.build();
        let mut pts: Vec<Option<Point>> =
            points.into_iter().map(|p| p.map(|(x, y)| Point::new(x, y))).collect();
        pts.resize(g.num_vertices(), None);
        let net = GeosocialNetwork::new(g, pts).unwrap();

        let mut buf = Vec::new();
        write_network(&net, &mut buf).unwrap();
        let loaded = read_network(buf.as_slice()).unwrap();
        prop_assert_eq!(loaded.num_vertices(), net.num_vertices());
        prop_assert_eq!(loaded.graph().num_edges(), net.graph().num_edges());
        for v in net.graph().vertices() {
            prop_assert_eq!(loaded.point(v), net.point(v));
            prop_assert_eq!(loaded.graph().out_neighbors(v), net.graph().out_neighbors(v));
        }
    }

    /// NaN and infinite coordinates are rejected at network construction,
    /// and the loader surfaces that as a Network error rather than panicking.
    #[test]
    fn non_finite_points_are_rejected(bad in "(nan|inf|-inf)") {
        let text = format!("V 1\nP 0 {bad} 1.0\n");
        match read_network(text.as_bytes()) {
            Err(LoadError::Network(_)) => {}
            other => prop_assert!(false, "expected Network error, got {:?}", other.is_ok()),
        }
    }
}
