//! Shared helpers for the cross-crate integration tests.

use gsr_core::methods::{GeoReach, SocReach, SpaReachBfl, SpaReachInt, ThreeDReach, ThreeDReachRev};
use gsr_core::{GeosocialNetwork, PreparedNetwork, RangeReachIndex, SccSpatialPolicy};
use gsr_geo::Point;
use gsr_graph::{GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds every evaluation method (both SCC policies where supported) with
/// a describing label.
pub fn all_indexes(prep: &PreparedNetwork) -> Vec<(String, Box<dyn RangeReachIndex>)> {
    let mut out: Vec<(String, Box<dyn RangeReachIndex>)> = Vec::new();
    for policy in [SccSpatialPolicy::Replicate, SccSpatialPolicy::Mbr] {
        let tag = policy.suffix();
        out.push((format!("SpaReach-BFL{tag}"), Box::new(SpaReachBfl::build(prep, policy))));
        out.push((format!("SpaReach-INT{tag}"), Box::new(SpaReachInt::build(prep, policy))));
        out.push((format!("3DReach{tag}"), Box::new(ThreeDReach::build(prep, policy))));
        out.push((format!("3DReach-REV{tag}"), Box::new(ThreeDReachRev::build(prep, policy))));
    }
    out.push(("GeoReach".to_string(), Box::new(GeoReach::build(prep))));
    out.push(("SocReach".to_string(), Box::new(SocReach::build(prep))));
    out
}

/// A random geosocial network: arbitrary directed edges (cycles allowed)
/// with a random subset of spatial vertices.
pub fn random_network(
    n: usize,
    edges: usize,
    spatial_fraction: f64,
    seed: u64,
) -> GeosocialNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    for _ in 0..edges {
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        builder.add_edge(u, v);
    }
    let points: Vec<Option<Point>> = (0..n)
        .map(|_| {
            rng.gen_bool(spatial_fraction)
                .then(|| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
        })
        .collect();
    GeosocialNetwork::new(builder.build(), points).expect("finite points")
}

/// A batch of random query regions over `[0, 100]^2` of mixed sizes,
/// including degenerate and out-of-space rectangles.
pub fn random_regions(count: usize, seed: u64) -> Vec<gsr_geo::Rect> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let r = match i % 4 {
            0 => {
                // Small square anywhere.
                let c = Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0));
                gsr_geo::Rect::square(c, rng.gen_range(0.1..10.0))
            }
            1 => {
                // Large region.
                let c = Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0));
                gsr_geo::Rect::square(c, rng.gen_range(20.0..120.0))
            }
            2 => {
                // Degenerate point probe.
                gsr_geo::Rect::from_point(Point::new(
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                ))
            }
            _ => {
                // Possibly outside the populated space.
                let c = Point::new(rng.gen_range(-50.0..150.0), rng.gen_range(-50.0..150.0));
                gsr_geo::Rect::square(c, rng.gen_range(1.0..30.0))
            }
        };
        out.push(r);
    }
    out
}
