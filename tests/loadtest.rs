//! Integration tests of the open-loop load generator
//! (`gsr_bench::loadtest`): the coordinated-omission regression against a
//! deliberately stalling fixture server, replay-vs-oracle agreement
//! through the real `gsr serve` code path with the result cache on, the
//! full sweep driver end to end, and thread-count invariance of the shared
//! latency histogram.

use gsr_bench::loadtest::{
    run_closed_loop, run_experiment, run_open_loop, run_sweep, LoadtestOptions, LoopSpec,
    ReplayPlan, SweepOptions,
};
use gsr_cli::{parse_args, run};
use gsr_core::hist::LatencyHistogram;
use gsr_core::methods::ThreeDReach;
use gsr_core::SccSpatialPolicy;
use gsr_datagen::workload::WorkloadGen;
use gsr_graph::stats::DegreeBucket;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A fixture server that replies `TRUE` to every request line, but — once,
/// globally, after `stall_after` replies — sleeps for `stall` before
/// answering. Open-loop accounting must charge that stall to every request
/// the schedule owed during it; closed-loop accounting records it once.
fn slow_fixture(stall_after: u64, stall: Duration) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("fixture bind");
    let addr = listener.local_addr().expect("fixture addr");
    let served = Arc::new(AtomicU64::new(0));
    let stalled = Arc::new(AtomicBool::new(false));
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(stream) = conn else { break };
            let served = Arc::clone(&served);
            let stalled = Arc::clone(&stalled);
            std::thread::spawn(move || {
                let Ok(read_half) = stream.try_clone() else { return };
                let mut reader = BufReader::new(read_half);
                let mut stream = stream;
                let mut line = String::new();
                loop {
                    line.clear();
                    match reader.read_line(&mut line) {
                        Ok(0) | Err(_) => return,
                        Ok(_) => {}
                    }
                    let n = served.fetch_add(1, Ordering::SeqCst) + 1;
                    if n > stall_after && !stalled.swap(true, Ordering::SeqCst) {
                        std::thread::sleep(stall);
                    }
                    if stream.write_all(b"TRUE\n").is_err() {
                        return;
                    }
                }
            });
        }
    });
    addr
}

fn trivial_plan() -> ReplayPlan {
    ReplayPlan { lines: vec!["REACH 0 0 0 1 1\n".to_string()], expected: vec![true] }
}

/// The coordinated-omission regression at one client count: the same trace
/// (200 requests at 200 qps, one 400 ms server stall) measured both ways.
/// The open-loop recorder's p99 must exceed the closed-loop p99, because
/// intended-start accounting charges the stall to the ~80 requests that
/// were scheduled during it, while the closed loop simply stops sending
/// and records the stall exactly once.
fn coordinated_omission_gap_at(clients: usize) {
    let stall = Duration::from_millis(400);
    let plan = trivial_plan();
    let rate_qps = 200.0;
    let total = 200;

    let open_addr = slow_fixture(5, stall);
    let open = run_open_loop(&LoopSpec { addr: open_addr, plan: &plan, clients, rate_qps, total })
        .expect("open loop");
    let closed_addr = slow_fixture(5, stall);
    let closed =
        run_closed_loop(&LoopSpec { addr: closed_addr, plan: &plan, clients, rate_qps, total })
            .expect("closed loop");

    for (label, m) in [("open", &open), ("closed", &closed)] {
        assert_eq!(m.sent, total, "{label} clients={clients}");
        assert_eq!(m.recorder.completed(), total, "{label} clients={clients}");
        assert_eq!(m.recorder.errors(), 0, "{label} clients={clients}");
        assert_eq!(m.recorder.mismatches(), 0, "{label} clients={clients}");
    }
    let open_p99 = open.recorder.quantile_us(0.99);
    let closed_p99 = closed.recorder.quantile_us(0.99);
    assert!(
        open_p99 > closed_p99,
        "clients={clients}: open-loop p99 ({open_p99} us) must exceed closed-loop p99 \
         ({closed_p99} us) — a closed loop coordinates with the server's stall and omits it"
    );
    // The stall is 40% of the run: open-loop p99 must sit deep inside it.
    assert!(
        u128::from(open_p99) >= stall.as_micros() / 4,
        "clients={clients}: open-loop p99 ({open_p99} us) must reflect the {} us stall",
        stall.as_micros()
    );
}

#[test]
fn coordinated_omission_gap_one_client() {
    coordinated_omission_gap_at(1);
}

#[test]
fn coordinated_omission_gap_two_clients() {
    coordinated_omission_gap_at(2);
}

#[test]
fn coordinated_omission_gap_four_clients() {
    coordinated_omission_gap_at(4);
}

/// Recording into the shared histogram from 1/2/4 worker threads produces
/// bit-identical bucket counts (and hence quantiles) to sequential
/// recording of the same samples — merge is exact, not approximate.
#[test]
fn histogram_is_thread_count_invariant() {
    // Deterministic LCG sample stream, heavy-tailed like real latencies.
    let samples: Vec<u64> = {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        (0..10_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) % 5_000_000
            })
            .collect()
    };
    let reference = LatencyHistogram::default();
    for &s in &samples {
        reference.record_us(s);
    }
    for threads in [1usize, 2, 4] {
        let hist = LatencyHistogram::default();
        std::thread::scope(|scope| {
            for chunk in samples.chunks(samples.len().div_ceil(threads)) {
                let hist = &hist;
                scope.spawn(move || {
                    let local = LatencyHistogram::default();
                    for &s in chunk {
                        local.record_us(s);
                    }
                    hist.merge_from(&local);
                });
            }
        });
        assert_eq!(hist.bucket_counts(), reference.bucket_counts(), "threads={threads}");
        for q in [0.5, 0.99, 0.999] {
            assert_eq!(hist.quantile_us(q), reference.quantile_us(q), "threads={threads} q={q}");
        }
    }
}

/// A `Write` sink the serve thread and the test share, to learn the
/// OS-assigned port from the `listening on ADDR` line.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().expect("buf lock")).into_owned()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("buf lock").extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn args(s: &[&str]) -> Vec<String> {
    s.iter().map(|x| x.to_string()).collect()
}

/// Replay-vs-oracle agreement through the REAL `gsr serve` code path (CLI
/// included), result cache enabled: drive the sweep, then check that every
/// reply matched `BatchExecutor` ground truth and that the server's
/// `STATS` counters reconcile exactly with the driver's tallies.
#[test]
fn replay_vs_oracle_agreement_through_gsr_serve() {
    let dir = std::env::temp_dir().join("gsr_loadtest_agreement");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let net_path = dir.join("net.gsr").to_string_lossy().to_string();
    let snap_path = dir.join("idx.snap").to_string_lossy().to_string();
    run(
        parse_args(&args(&[
            "generate", "--preset", "yelp", "--scale", "0.02", "--out", &net_path,
        ]))
        .expect("parse generate"),
        &mut Vec::new(),
    )
    .expect("generate");
    run(
        parse_args(&args(&["build", &net_path, "--method", "3dreach", "--save", &snap_path]))
            .expect("parse build"),
        &mut Vec::new(),
    )
    .expect("build");

    // 4 pipelined clients + 1 worker for the sequential control
    // connections (each server worker owns one connection until EOF).
    let clients = 4;
    let threads = (clients + 1).to_string();
    let cmd = parse_args(&args(&[
        "serve", "--load", &snap_path, "--port", "0", "--threads", &threads,
        "--cache-entries", "1024",
    ]))
    .expect("parse serve");
    let out = SharedBuf::default();
    let serve_thread = {
        let mut out = out.clone();
        std::thread::spawn(move || {
            run(cmd, &mut out).expect("serve must exit cleanly");
        })
    };
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr: SocketAddr = loop {
        let text = out.contents();
        if let Some(line) = text.lines().find(|l| l.starts_with("listening on ")) {
            break line["listening on ".len()..].parse().expect("addr");
        }
        assert!(Instant::now() < deadline, "server never announced an address:\n{text}");
        std::thread::sleep(Duration::from_millis(10));
    };

    // The oracle: a fresh, independent build from the same network file.
    let net = gsr_datagen::io::load_network(std::path::Path::new(&net_path)).expect("load net");
    let prep = gsr_core::PreparedNetwork::new(net);
    let oracle = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
    let gen = WorkloadGen::new(&prep);
    let workload = gen.extent_degree(5.0, DegreeBucket::PAPER_BUCKETS[0], 40, 7);
    let plan = ReplayPlan::from_workload(&workload, &oracle);

    let opts = SweepOptions {
        clients,
        duration_ms: 250,
        base_rate_qps: 400.0,
        growth: 2.0,
        max_steps: 2,
        min_steps: 1,
        p99_stop_us: u64::MAX,
        cache_enabled: true,
    };
    let steps = run_sweep(addr, &plan, &opts).expect("sweep");
    assert_eq!(steps.len(), 2);
    for (i, step) in steps.iter().enumerate() {
        assert_eq!(step.mismatches, 0, "step {i}: replies must match the oracle");
        assert_eq!(step.errors, 0, "step {i}");
        step.reconcile(true).unwrap_or_else(|e| panic!("step {i} does not reconcile: {e}"));
        assert_eq!(
            step.per_client_completed.iter().sum::<u64>(),
            step.completed,
            "step {i}: per-client tallies must partition the total"
        );
    }
    // 100 requests cycling 40 distinct queries: repeats must hit the cache,
    // and step 2 starts with a warm cache from step 1 (RESET zeroes only
    // the counters, never the entries).
    assert!(steps[0].cache_hits > 0, "repeats within a step must hit: {:?}", steps[0]);
    assert!(
        steps[1].cache_hit_rate > steps[0].cache_hit_rate,
        "a warm cache must hit more: {} vs {}",
        steps[1].cache_hit_rate,
        steps[0].cache_hit_rate
    );

    // Shut the server down and let the serve thread exit cleanly.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(b"SHUTDOWN\n").expect("shutdown");
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).expect("read");
    assert_eq!(reply.trim_end(), "OK shutdown");
    serve_thread.join().expect("serve thread");
    std::fs::remove_dir_all(&dir).ok();
}

/// The full experiment driver end to end at scale 0: a sweep must produce
/// at least `min_steps` reconciling steps with zero oracle mismatches, the
/// overload step must actually shed its flood with tallies that balance,
/// the sharded comparison (here 2 shards) must replay the same schedule
/// with zero mismatches, and the JSON artifact must carry the fields the
/// plots need.
#[test]
fn sweep_experiment_end_to_end_at_scale_zero() {
    let cfg = gsr_bench::Config { scale: 0.0, queries: 30, seed: 11, threads: 1 };
    let opts = LoadtestOptions {
        clients: 2,
        duration_ms: 150,
        rate_qps: 300.0,
        sweep: true,
        cache_entries: 512,
        shards: 2,
    };
    let (table, steps, overload, sharded) =
        run_experiment(&cfg, &opts).expect("loadtest experiment");
    assert!(steps.len() >= 4, "a sweep maps at least 4 rate steps, got {}", steps.len());
    let sharded = sharded.expect("shards=2 must produce the comparison");
    assert_eq!(sharded.shards, 2);
    assert_eq!(
        sharded.steps.len(),
        steps.len(),
        "the sharded sweep replays the same rate schedule"
    );
    for (i, step) in sharded.steps.iter().enumerate() {
        assert_eq!(step.mismatches, 0, "sharded step {i}: replies must match the oracle");
        step.reconcile(true)
            .unwrap_or_else(|e| panic!("sharded step {i} does not reconcile: {e}"));
    }
    assert_eq!(table.len(), steps.len() + sharded.steps.len());
    for (i, step) in steps.iter().enumerate() {
        step.reconcile(true).unwrap_or_else(|e| panic!("step {i} does not reconcile: {e}"));
        assert!(
            (step.offered_qps - 300.0 * 2f64.powi(i as i32)).abs() < 1e-9,
            "geometric rate schedule, step {i}: {}",
            step.offered_qps
        );
    }
    overload.reconcile().unwrap_or_else(|e| panic!("overload does not reconcile: {e}"));
    assert!(overload.busy > 0, "the flood must be shed: {overload:?}");
    assert_eq!(overload.holders, opts.clients);
    assert_eq!(
        overload.busy,
        overload.server_shed + overload.server_rejected,
        "every busy reply is one server-side refusal: {overload:?}"
    );
    let json =
        gsr_bench::loadtest::loadtest_json(&cfg, &opts, &steps, Some(&overload), Some(&sharded));
    for field in ["\"offered_qps\"", "\"achieved_qps\"", "\"p50_us\"", "\"p99_us\"",
        "\"p999_us\"", "\"cache_hit_rate\"", "\"per_client_completed\"", "\"mismatches\"",
        "\"overload\"", "\"shed_rate\"", "\"served_p99_us\"",
        "\"sharded\": {\"shards\": 2"]
    {
        assert!(json.contains(field), "JSON missing {field}:\n{json}");
    }
}
