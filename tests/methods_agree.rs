//! Every evaluation method, under every SCC policy, must return exactly
//! the BFS ground-truth answer for every query — on DAGs, on cyclic
//! graphs, and on the generated dataset analogs.

use gsr_core::{BatchExecutor, PreparedNetwork};
use gsr_datagen::workload::WorkloadGen;
use gsr_datagen::NetworkSpec;
use gsr_graph::stats::DegreeBucket;
use gsr_tests::{all_indexes, random_network, random_regions};

fn check_network(prep: &PreparedNetwork, regions: &[gsr_geo::Rect], label: &str) {
    let indexes = all_indexes(prep);
    let n = prep.network().num_vertices() as u32;
    // Probe a spread of query vertices, not all (keeps runtime bounded).
    let step = (n / 40).max(1);
    for v in (0..n).step_by(step as usize) {
        for region in regions {
            let expected = prep.range_reach_bfs(v, region);
            for (name, idx) in &indexes {
                assert_eq!(
                    idx.query(v, region),
                    expected,
                    "{label}: {name} disagrees with BFS at v={v}, region={region}"
                );
            }
        }
    }
}

#[test]
fn random_cyclic_networks() {
    for seed in 0..6 {
        let net = random_network(150, 500, 0.4, seed);
        let prep = PreparedNetwork::new(net);
        let regions = random_regions(12, seed * 31 + 7);
        check_network(&prep, &regions, &format!("random #{seed}"));
    }
}

#[test]
fn sparse_networks_with_few_spatial_vertices() {
    for seed in 0..4 {
        let net = random_network(200, 180, 0.05, 100 + seed);
        let prep = PreparedNetwork::new(net);
        let regions = random_regions(12, seed * 17 + 3);
        check_network(&prep, &regions, &format!("sparse #{seed}"));
    }
}

#[test]
fn dense_single_scc_network() {
    // Everything reaches everything: the Gowalla regime in the extreme.
    let net = random_network(80, 2500, 0.5, 42);
    let prep = PreparedNetwork::new(net);
    assert!(prep.stats().largest_scc > 60, "expected a giant SCC");
    check_network(&prep, &random_regions(16, 9), "dense");
}

#[test]
fn network_with_no_spatial_vertices() {
    let net = random_network(60, 200, 0.0, 5);
    let prep = PreparedNetwork::new(net);
    let indexes = all_indexes(&prep);
    for (name, idx) in &indexes {
        for region in random_regions(8, 11) {
            assert!(!idx.query(0, &region), "{name}: nothing spatial, must be FALSE");
        }
    }
}

#[test]
fn generated_dataset_analogs_match_bfs() {
    for spec in NetworkSpec::paper_datasets(0.02) {
        let prep = PreparedNetwork::new(spec.generate());
        let gen = WorkloadGen::new(&prep);
        let indexes = all_indexes(&prep);
        for bucket in [DegreeBucket::PAPER_BUCKETS[0], DegreeBucket::PAPER_BUCKETS[4]] {
            let workload = gen.extent_degree(5.0, bucket, 30, 77);
            for (v, region) in &workload.queries {
                let expected = prep.range_reach_bfs(*v, region);
                for (name, idx) in &indexes {
                    assert_eq!(
                        idx.query(*v, region),
                        expected,
                        "{}: {name} at v={v}, region={region}",
                        spec.name
                    );
                }
            }
        }
    }
}

#[test]
fn batch_executor_matches_bfs_for_every_method_and_policy() {
    // The agreement oracle, driven through the BatchExecutor: every method
    // under every SCC policy (all_indexes builds Replicate and Mbr
    // variants) must return the BFS ground truth for the whole batch, in
    // input order, at every thread count — including through the
    // `&dyn RangeReachIndex` objects the harness and CLI use.
    for seed in 0..3u64 {
        let net = random_network(130, 420, 0.4, 300 + seed);
        let prep = PreparedNetwork::new(net);
        let regions = random_regions(10, seed * 13 + 1);
        let n = prep.network().num_vertices() as u32;
        let step = (n / 30).max(1);
        let queries: Vec<(u32, gsr_geo::Rect)> = (0..n)
            .step_by(step as usize)
            .flat_map(|v| regions.iter().map(move |r| (v, *r)))
            .collect();
        let expected: Vec<bool> =
            queries.iter().map(|(v, r)| prep.range_reach_bfs(*v, r)).collect();
        for (name, idx) in all_indexes(&prep) {
            for threads in [1, 2, 4] {
                let exec = BatchExecutor::new(threads);
                assert_eq!(
                    exec.run(idx.as_ref(), &queries),
                    expected,
                    "seed {seed}: {name} disagrees with BFS at threads={threads}"
                );
                let (answers, _) = exec.run_with_cost(idx.as_ref(), &queries);
                assert_eq!(
                    answers, expected,
                    "seed {seed}: {name} cost path disagrees at threads={threads}"
                );
            }
        }
    }
}

#[test]
fn self_loops_and_isolated_vertices() {
    use gsr_core::GeosocialNetwork;
    use gsr_geo::{Point, Rect};
    use gsr_graph::GraphBuilder;

    let mut b = GraphBuilder::new(4);
    b.add_edge(0, 0); // self loop on a spatial vertex
    b.add_edge(1, 0);
    // Vertex 2: isolated spatial; vertex 3: isolated social.
    let points = vec![
        Some(Point::new(10.0, 10.0)),
        None,
        Some(Point::new(50.0, 50.0)),
        None,
    ];
    let prep = PreparedNetwork::new(GeosocialNetwork::new(b.build(), points).unwrap());

    let around0 = Rect::square(Point::new(10.0, 10.0), 2.0);
    let around2 = Rect::square(Point::new(50.0, 50.0), 2.0);
    for (name, idx) in all_indexes(&prep) {
        assert!(idx.query(0, &around0), "{name}: self-loop vertex sees itself");
        assert!(idx.query(1, &around0), "{name}: 1 -> 0");
        assert!(idx.query(2, &around2), "{name}: isolated spatial vertex sees itself");
        assert!(!idx.query(3, &around0), "{name}: isolated social vertex reaches nothing");
        assert!(!idx.query(0, &around2), "{name}: 0 cannot reach 2");
    }
}
