//! Parallel builds must be bit-for-bit identical to sequential builds.
//!
//! The work-pool (`gsr_graph::par`) places every result by its input
//! index and the construction algorithms are level-scheduled (or, for
//! GRAIL, per-traversal seeded), so the number of worker threads must
//! never change what gets built. These tests pin that contract on
//! generated dataset analogs, for every parallelized structure: the
//! interval labeling, the GRAIL labels, the BFL filters, the STR-packed
//! R-tree, and the full evaluation methods composed from them.

use gsr_core::methods::{SpaReachBfl, SpaReachInt, ThreeDReach, ThreeDReachRev};
use gsr_core::{PreparedNetwork, RangeReachIndex, SccSpatialPolicy};
use gsr_datagen::NetworkSpec;
use gsr_geo::Aabb;
use gsr_index::{RTree, RTreeParams};
use gsr_reach::bfl::{BflIndex, BflParams};
use gsr_reach::grail::{GrailIndex, GrailParams};
use gsr_reach::interval::{BuildOptions, IntervalLabeling};

const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

fn datasets() -> Vec<PreparedNetwork> {
    vec![
        PreparedNetwork::new(NetworkSpec::weeplaces(0.08).generate()),
        PreparedNetwork::new(NetworkSpec::gowalla(0.04).generate()),
    ]
}

#[test]
fn interval_labeling_is_thread_count_invariant() {
    for prep in datasets() {
        for compress in [true, false] {
            let sequential = IntervalLabeling::build_with(
                prep.dag(),
                BuildOptions { compress, threads: 1, ..BuildOptions::default() },
            );
            for threads in THREAD_COUNTS {
                let parallel = IntervalLabeling::build_with(
                    prep.dag(),
                    BuildOptions { compress, threads, ..BuildOptions::default() },
                );
                assert_eq!(parallel, sequential, "compress={compress} threads={threads}");
            }
        }
    }
}

#[test]
fn grail_labels_are_thread_count_invariant() {
    for prep in datasets() {
        let params = |threads| GrailParams { num_traversals: 4, seed: 99, threads };
        let sequential = GrailIndex::build_with(prep.dag(), params(1));
        for threads in THREAD_COUNTS {
            let parallel = GrailIndex::build_with(prep.dag(), params(threads));
            assert_eq!(parallel.labels(), sequential.labels(), "threads={threads}");
        }
    }
}

#[test]
fn bfl_filters_are_thread_count_invariant() {
    for prep in datasets() {
        let params = |threads| BflParams { threads, ..BflParams::default() };
        let sequential = BflIndex::build_with(prep.dag(), params(1));
        for threads in THREAD_COUNTS {
            let parallel = BflIndex::build_with(prep.dag(), params(threads));
            assert_eq!(parallel.filters(), sequential.filters(), "threads={threads}");
        }
    }
}

#[test]
fn rtree_str_packing_is_thread_count_invariant() {
    for prep in datasets() {
        let entries: Vec<(Aabb<2>, u32)> = prep
            .network()
            .spatial_vertices()
            .map(|(v, p)| (Aabb::from_point([p.x, p.y]), v))
            .collect();
        assert!(entries.len() > 100, "dataset too small to exercise slab tiling");
        let sequential =
            RTree::bulk_load_with_params(entries.clone(), RTreeParams::default());
        for threads in THREAD_COUNTS {
            let parallel =
                RTree::bulk_load_parallel(entries.clone(), RTreeParams::default(), threads);
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }
}

/// Whole-method determinism: the composed builds (labeling + replication
/// pass + R-tree packing) must answer every probe exactly like their
/// sequential counterparts and report the same index size.
#[test]
fn method_builds_are_thread_count_invariant() {
    let prep = PreparedNetwork::new(NetworkSpec::yelp(0.05).generate());
    let n = prep.network().num_vertices() as u32;
    let probes: Vec<(u32, gsr_geo::Rect)> = (0..n)
        .step_by((n / 25).max(1) as usize)
        .flat_map(|v| {
            [
                (v, gsr_geo::Rect::new(0.0, 0.0, 40.0, 40.0)),
                (v, gsr_geo::Rect::new(60.0, 60.0, 100.0, 100.0)),
            ]
        })
        .collect();
    for policy in [SccSpatialPolicy::Replicate, SccSpatialPolicy::Mbr] {
        let sequential: Vec<(&str, Box<dyn RangeReachIndex>)> = vec![
            ("SpaReach-BFL", Box::new(SpaReachBfl::build(&prep, policy))),
            ("SpaReach-INT", Box::new(SpaReachInt::build(&prep, policy))),
            ("3DReach", Box::new(ThreeDReach::build(&prep, policy))),
            ("3DReach-REV", Box::new(ThreeDReachRev::build(&prep, policy))),
        ];
        for threads in THREAD_COUNTS {
            let parallel: Vec<(&str, Box<dyn RangeReachIndex>)> = vec![
                ("SpaReach-BFL", Box::new(SpaReachBfl::build_threaded(&prep, policy, threads))),
                ("SpaReach-INT", Box::new(SpaReachInt::build_threaded(&prep, policy, threads))),
                ("3DReach", Box::new(ThreeDReach::build_threaded(&prep, policy, threads))),
                ("3DReach-REV", Box::new(ThreeDReachRev::build_threaded(&prep, policy, threads))),
            ];
            for ((name, seq), (_, par)) in sequential.iter().zip(&parallel) {
                assert_eq!(
                    par.index_bytes(),
                    seq.index_bytes(),
                    "{name}{} threads={threads}: index size changed",
                    policy.suffix()
                );
                for (v, r) in &probes {
                    assert_eq!(
                        par.query(*v, r),
                        seq.query(*v, r),
                        "{name}{} threads={threads} v={v} r={r}",
                        policy.suffix()
                    );
                }
            }
        }
    }
}
