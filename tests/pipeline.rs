//! End-to-end pipeline tests: generate → serialize → load → prepare →
//! index → query, exercising the full public API the way a downstream
//! application would.

use gsr_core::methods::ThreeDReach;
use gsr_core::{PreparedNetwork, RangeReachIndex, SccSpatialPolicy};
use gsr_datagen::workload::WorkloadGen;
use gsr_datagen::{io, NetworkSpec};
use gsr_graph::stats::DegreeBucket;

#[test]
fn save_load_preserves_query_answers() {
    let net = NetworkSpec::foursquare(0.02).generate();

    let mut buf = Vec::new();
    io::write_network(&net, &mut buf).unwrap();
    let reloaded = io::read_network(buf.as_slice()).unwrap();

    let prep_a = PreparedNetwork::new(net);
    let prep_b = PreparedNetwork::new(reloaded);

    let idx_a = ThreeDReach::build(&prep_a, SccSpatialPolicy::Replicate);
    let idx_b = ThreeDReach::build(&prep_b, SccSpatialPolicy::Replicate);

    let gen = WorkloadGen::new(&prep_a);
    let workload = gen.extent_degree(5.0, DegreeBucket::PAPER_BUCKETS[0], 100, 5);
    for (v, region) in &workload.queries {
        assert_eq!(idx_a.query(*v, region), idx_b.query(*v, region));
    }
}

#[test]
fn workloads_respect_degree_buckets() {
    let prep = PreparedNetwork::new(NetworkSpec::yelp(0.1).generate());
    let gen = WorkloadGen::new(&prep);
    let g = prep.network().graph();
    for bucket in DegreeBucket::PAPER_BUCKETS {
        let w = gen.extent_degree(5.0, bucket, 50, 9);
        // Either all query vertices fall inside the bucket, or the bucket
        // was empty and the generator fell back (which it reports by still
        // producing valid positive-degree vertices).
        for (v, _) in &w.queries {
            let d = g.out_degree(*v) as u32;
            assert!(d >= 1, "query vertex must have outgoing edges");
            if !gsr_graph::stats::vertices_in_bucket(g, bucket).is_empty() {
                assert!(bucket.contains(d), "degree {d} outside bucket {}", bucket.label());
            }
        }
    }
}

#[test]
fn selectivity_workload_brackets_target() {
    let prep = PreparedNetwork::new(NetworkSpec::gowalla(0.1).generate());
    let gen = WorkloadGen::new(&prep);
    for target in [0.1, 1.0] {
        let w = gen.selectivity(target, DegreeBucket::PAPER_BUCKETS[0], 40, 21);
        let mut close = 0usize;
        for (_, region) in &w.queries {
            let sel = gen.measured_selectivity_pct(region);
            if sel > 0.0 && (sel / target) < 4.0 && (target / sel.max(1e-9)) < 4.0 {
                close += 1;
            }
        }
        assert!(
            close * 10 >= w.queries.len() * 7,
            "at least 70% of regions within 4x of the {target}% target, got {close}/{}",
            w.queries.len()
        );
    }
}

#[test]
fn positive_rate_varies_with_extent() {
    // Larger query regions can only be easier to hit: the positive-answer
    // rate must be (weakly) monotone in the extent for a fixed seed pool.
    let prep = PreparedNetwork::new(NetworkSpec::foursquare(0.05).generate());
    let gen = WorkloadGen::new(&prep);
    let idx = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
    let mut rates = Vec::new();
    for extent in [1.0, 5.0, 20.0] {
        let w = gen.extent_degree(extent, DegreeBucket::PAPER_BUCKETS[2], 150, 33);
        let pos = w.queries.iter().filter(|(v, r)| idx.query(*v, r)).count();
        rates.push(pos);
    }
    assert!(
        rates[0] <= rates[2] + 10,
        "positive rate should grow (or stay) with extent: {rates:?}"
    );
}

#[test]
fn quickstart_flow_from_readme() {
    // The README quickstart, kept compiling as a test.
    use gsr_core::GeosocialNetwork;
    use gsr_geo::{Point, Rect};
    use gsr_graph::GraphBuilder;

    let mut g = GraphBuilder::new(3);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    let points = vec![None, None, Some(Point::new(5.0, 5.0))];
    let net = GeosocialNetwork::new(g.build(), points).unwrap();
    let prepared = PreparedNetwork::new(net);

    let index = ThreeDReach::build(&prepared, SccSpatialPolicy::Replicate);
    assert!(index.query(0, &Rect::new(0.0, 0.0, 10.0, 10.0)));
    assert!(!index.query(2, &Rect::new(20.0, 20.0, 30.0, 30.0)));
}
