//! Consistency of the per-query work counters: they must agree with what
//! independent structures report about the same query.

use gsr_core::methods::{GeoReach, ScanMode, SocReach, SpaReachBfl, ThreeDReach};
use gsr_core::{BatchExecutor, PreparedNetwork, QueryCost, RangeReachIndex, SccSpatialPolicy};
use gsr_datagen::workload::WorkloadGen;
use gsr_datagen::NetworkSpec;
use gsr_graph::stats::DegreeBucket;
use gsr_index::RTree;

fn setup() -> PreparedNetwork {
    PreparedNetwork::new(NetworkSpec::yelp(0.05).generate())
}

#[test]
fn spareach_candidates_equal_range_query_count() {
    let prep = setup();
    let idx = SpaReachBfl::build(&prep, SccSpatialPolicy::Replicate);

    // Independent count of spatial vertices per region.
    let tree: RTree<2, ()> = RTree::bulk_load(
        prep.network()
            .spatial_vertices()
            .map(|(_, p)| (gsr_geo::Aabb::from_point([p.x, p.y]), ()))
            .collect(),
    );

    let gen = WorkloadGen::new(&prep);
    let w = gen.extent_degree(5.0, DegreeBucket::PAPER_BUCKETS[0], 50, 9);
    for (v, region) in &w.queries {
        let (answer, cost) = idx.query_with_cost(*v, region);
        let expected = tree.count_in(&(*region).into());
        assert_eq!(cost.spatial_candidates, expected, "candidates for {region}");
        // Reach tests stop at the first positive.
        assert!(cost.reach_tests <= cost.spatial_candidates);
        if !answer {
            assert_eq!(
                cost.reach_tests, cost.spatial_candidates,
                "negative answers must test every candidate"
            );
        }
    }
}

#[test]
fn socreach_visits_exactly_its_descendants_on_negatives() {
    let prep = setup();
    let idx = SocReach::build_with(&prep, ScanMode::PerPost);
    let gen = WorkloadGen::new(&prep);
    let w = gen.extent_degree(5.0, DegreeBucket::PAPER_BUCKETS[0], 60, 3);
    for (v, region) in &w.queries {
        let (answer, cost) = idx.query_with_cost(*v, region);
        let descendants = idx.descendant_count(*v);
        assert!(cost.vertices_visited <= descendants);
        if !answer {
            assert_eq!(
                cost.vertices_visited, descendants,
                "negative answers must scan the whole descendant set"
            );
        }
    }
}

#[test]
fn georeach_traversal_is_bounded_by_components() {
    let prep = setup();
    let idx = GeoReach::build(&prep);
    let gen = WorkloadGen::new(&prep);
    let w = gen.extent_degree(5.0, DegreeBucket::PAPER_BUCKETS[0], 60, 5);
    for (v, region) in &w.queries {
        let (_, cost) = idx.query_with_cost(*v, region);
        assert!(cost.vertices_visited >= 1, "the start component is always visited");
        assert!(cost.vertices_visited <= prep.num_components());
    }
}

#[test]
fn threedreach_issues_one_query_per_label_on_negatives() {
    let prep = setup();
    let idx = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
    let gen = WorkloadGen::new(&prep);
    let w = gen.extent_degree(5.0, DegreeBucket::PAPER_BUCKETS[0], 60, 7);
    for (v, region) in &w.queries {
        let (answer, cost) = idx.query_with_cost(*v, region);
        let labels = idx.labels().num_intervals(prep.comp(*v));
        assert!(cost.range_queries >= 1);
        assert!(cost.range_queries <= labels);
        if !answer {
            assert_eq!(cost.range_queries, labels, "negatives probe every label");
        }
        // The boolean fast path and the counted path agree.
        assert_eq!(idx.query(*v, region), answer);
    }
}

#[test]
fn batch_cost_accumulates_exactly_the_per_query_costs() {
    // The BatchExecutor's merged counters must be the plain sum of what
    // `query_with_cost` reports per query — for every method that counts
    // work, at every thread count.
    let prep = setup();
    let gen = WorkloadGen::new(&prep);
    let w = gen.extent_degree(5.0, DegreeBucket::PAPER_BUCKETS[0], 80, 21);
    let indexes: Vec<Box<dyn RangeReachIndex>> = vec![
        Box::new(SpaReachBfl::build(&prep, SccSpatialPolicy::Replicate)),
        Box::new(SpaReachBfl::build(&prep, SccSpatialPolicy::Mbr)),
        Box::new(ThreeDReach::build(&prep, SccSpatialPolicy::Replicate)),
        Box::new(SocReach::build(&prep)),
        Box::new(GeoReach::build(&prep)),
    ];
    for idx in &indexes {
        let mut expected = QueryCost::default();
        let expected_answers: Vec<bool> = w
            .queries
            .iter()
            .map(|(v, r)| {
                let (hit, cost) = idx.query_with_cost(*v, r);
                expected.accumulate(&cost);
                hit
            })
            .collect();
        for threads in [1, 2, 4, 8] {
            let (answers, total) =
                BatchExecutor::new(threads).run_with_cost(idx.as_ref(), &w.queries);
            assert_eq!(answers, expected_answers, "{} threads={threads}", idx.name());
            assert_eq!(total, expected, "{} threads={threads}", idx.name());
        }
    }
}

#[test]
fn default_query_with_cost_reports_empty_counters() {
    // Methods without an override fall back to zeroed counters.
    struct Trivial;
    impl RangeReachIndex for Trivial {
        fn num_vertices(&self) -> usize {
            1
        }
        fn query_unchecked(&self, _: u32, _: &gsr_geo::Rect) -> bool {
            true
        }
        fn index_bytes(&self) -> usize {
            0
        }
        fn name(&self) -> &'static str {
            "trivial"
        }
    }
    let (answer, cost) = Trivial.query_with_cost(0, &gsr_geo::Rect::new(0.0, 0.0, 1.0, 1.0));
    assert!(answer);
    assert_eq!(cost, gsr_core::QueryCost::default());
}
