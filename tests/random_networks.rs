//! Property-based integration tests: every method agrees with BFS ground
//! truth on arbitrary proptest-generated geosocial networks.

use gsr_core::{GeosocialNetwork, PreparedNetwork};
use gsr_geo::{Point, Rect};
use gsr_graph::{GraphBuilder, VertexId};
use gsr_tests::all_indexes;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct NetCase {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
    spatial: Vec<Option<(f64, f64)>>,
    regions: Vec<(f64, f64, f64, f64)>,
    query_vertices: Vec<VertexId>,
}

fn arb_case() -> impl Strategy<Value = NetCase> {
    (5usize..40).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n as VertexId, 0..n as VertexId), 0..120);
        let spatial = prop::collection::vec(
            prop::option::weighted(0.5, (0.0..100.0f64, 0.0..100.0f64)),
            n..=n,
        );
        let regions = prop::collection::vec(
            (-10.0..110.0f64, -10.0..110.0f64, 0.0..60.0f64, 0.0..60.0f64),
            1..8,
        );
        let queries = prop::collection::vec(0..n as VertexId, 1..8);
        (Just(n), edges, spatial, regions, queries).prop_map(
            |(n, edges, spatial, regions, query_vertices)| NetCase {
                n,
                edges,
                spatial,
                regions,
                query_vertices,
            },
        )
    })
}

fn build(case: &NetCase) -> (PreparedNetwork, Vec<Rect>) {
    let mut b = GraphBuilder::new(case.n);
    for &(u, v) in &case.edges {
        b.add_edge(u, v);
    }
    let points: Vec<Option<Point>> =
        case.spatial.iter().map(|p| p.map(|(x, y)| Point::new(x, y))).collect();
    let prep = PreparedNetwork::new(GeosocialNetwork::new(b.build(), points).unwrap());
    let regions = case
        .regions
        .iter()
        .map(|&(x, y, w, h)| Rect::new(x, y, x + w, y + h))
        .collect();
    (prep, regions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn all_methods_match_bfs(case in arb_case()) {
        let (prep, regions) = build(&case);
        let indexes = all_indexes(&prep);
        for &v in &case.query_vertices {
            for region in &regions {
                let expected = prep.range_reach_bfs(v, region);
                for (name, idx) in &indexes {
                    prop_assert_eq!(
                        idx.query(v, region),
                        expected,
                        "{} at v={}, region={}",
                        name, v, region
                    );
                }
            }
        }
    }

    #[test]
    fn whole_space_query_equals_any_spatial_descendant(case in arb_case()) {
        // Querying the whole plane answers "does v reach ANY spatial
        // vertex" — precisely GeoReach's GeoB bit.
        let (prep, _) = build(&case);
        let everything = Rect::new(-1e6, -1e6, 1e6, 1e6);
        let indexes = all_indexes(&prep);
        for v in 0..prep.network().num_vertices() as VertexId {
            let expected = prep.range_reach_bfs(v, &everything);
            for (name, idx) in &indexes {
                prop_assert_eq!(idx.query(v, &everything), expected, "{} at v={}", name, v);
            }
        }
    }

    #[test]
    fn answers_are_monotone_in_the_region(case in arb_case()) {
        // If R1 ⊆ R2, a TRUE for R1 forces a TRUE for R2.
        let (prep, regions) = build(&case);
        let indexes = all_indexes(&prep);
        for &v in &case.query_vertices {
            for region in &regions {
                let bigger = Rect::new(
                    region.min_x - 5.0,
                    region.min_y - 5.0,
                    region.max_x + 5.0,
                    region.max_y + 5.0,
                );
                for (name, idx) in &indexes {
                    if idx.query(v, region) {
                        prop_assert!(
                            idx.query(v, &bigger),
                            "{} not monotone at v={}, region={}",
                            name, v, region
                        );
                    }
                }
            }
        }
    }
}
