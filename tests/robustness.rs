//! Robustness contract of the fallible query layer: typed errors for bad
//! input on every method, time-budgeted batches with exact partial
//! answers, cooperative cancellation, and the degraded-mode fallback.

use gsr_core::extensions::{RegionNetwork, RegionReach, VolumetricReach};
use gsr_core::methods::DynamicThreeDReach;
use gsr_core::{
    BatchExecutor, BatchOptions, CancelToken, FallbackIndex, FallbackOptions, GsrError,
    OnlineReach, PreparedNetwork, QueryCost, RangeReachIndex, SccSpatialPolicy,
};
use gsr_geo::{Aabb, Rect};
use gsr_tests::{all_indexes, random_network, random_regions};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn prepared(seed: u64) -> PreparedNetwork {
    PreparedNetwork::new(random_network(120, 400, 0.4, seed))
}

/// Every method (all six static evaluators under both SCC policies, the
/// dynamic index, and the online fallback) rejects out-of-range vertices
/// and malformed rectangles with typed errors instead of panicking.
#[test]
fn every_method_rejects_bad_input_without_panicking() {
    let prep = prepared(11);
    let n = prep.network().num_vertices();
    let mut indexes = all_indexes(&prep);
    indexes.push(("3DReach-DYN".to_string(), Box::new(DynamicThreeDReach::build(&prep))));
    indexes.push((
        "OnlineReach".to_string(),
        Box::new(OnlineReach::new(Arc::new(prepared(11)))),
    ));

    let good = Rect::new(10.0, 10.0, 60.0, 60.0);
    let bad_rects = [
        Rect { min_x: f64::NAN, min_y: 0.0, max_x: 1.0, max_y: 1.0 },
        Rect { min_x: 0.0, min_y: f64::NEG_INFINITY, max_x: 1.0, max_y: 1.0 },
        Rect { min_x: 0.0, min_y: 0.0, max_x: f64::INFINITY, max_y: 1.0 },
        Rect { min_x: 5.0, min_y: 0.0, max_x: 1.0, max_y: 1.0 },
        Rect { min_x: 0.0, min_y: 5.0, max_x: 1.0, max_y: 1.0 },
    ];

    for (label, idx) in &indexes {
        assert_eq!(idx.num_vertices(), n, "{label}");
        // Out-of-range vertices: first invalid id and far beyond.
        for v in [n as u32, u32::MAX] {
            match idx.try_query(v, &good) {
                Err(GsrError::InvalidVertex { vertex, num_vertices }) => {
                    assert_eq!(vertex, v, "{label}");
                    assert_eq!(num_vertices, n, "{label}");
                }
                other => panic!("{label}: expected InvalidVertex for {v}, got {other:?}"),
            }
            assert!(
                matches!(idx.try_query_with_cost(v, &good), Err(GsrError::InvalidVertex { .. })),
                "{label}: cost path must validate too"
            );
        }
        // Malformed rectangles.
        for bad in &bad_rects {
            assert!(
                matches!(idx.try_query(0, bad), Err(GsrError::InvalidRect { .. })),
                "{label}: rect {bad:?} must be rejected"
            );
        }
        // Valid input: try_query agrees with the infallible wrapper.
        for v in [0u32, (n - 1) as u32] {
            assert_eq!(idx.try_query(v, &good).unwrap(), idx.query(v, &good), "{label}");
        }
    }
}

/// The extension evaluators (rectangle geometries, 3-D space) share the
/// same validation boundary.
#[test]
fn extensions_validate_inputs() {
    let g = gsr_graph::graph_from_edges(3, &[(0, 1), (1, 2)]);
    let regions = vec![None, Some(Rect::new(0.0, 0.0, 5.0, 5.0)), None];
    let region_idx = RegionReach::build(&RegionNetwork::new(g.clone(), regions));
    let probe = Rect::new(0.0, 0.0, 10.0, 10.0);
    assert!(region_idx.try_query(0, &probe).unwrap());
    assert!(matches!(
        region_idx.try_query(99, &probe),
        Err(GsrError::InvalidVertex { vertex: 99, num_vertices: 3 })
    ));
    let inverted = Rect { min_x: 9.0, min_y: 0.0, max_x: 1.0, max_y: 1.0 };
    assert!(matches!(region_idx.try_query(0, &inverted), Err(GsrError::InvalidRect { .. })));

    let points = vec![None, Some([1.0, 1.0, 1.0]), None];
    let vol_idx = VolumetricReach::build(&g, &points);
    let cube = Aabb::new([0.0, 0.0, 0.0], [5.0, 5.0, 5.0]);
    assert!(vol_idx.try_query(0, &cube).unwrap());
    assert!(matches!(vol_idx.try_query(99, &cube), Err(GsrError::InvalidVertex { .. })));
    let nan_box = Aabb { min: [0.0, f64::NAN, 0.0], max: [5.0, 5.0, 5.0] };
    assert!(matches!(vol_idx.try_query(0, &nan_box), Err(GsrError::InvalidRect { .. })));
    let inverted_box = Aabb { min: [0.0, 0.0, 9.0], max: [5.0, 5.0, 1.0] };
    assert!(matches!(vol_idx.try_query(0, &inverted_box), Err(GsrError::InvalidRect { .. })));
}

/// Unbounded `run_bounded` agrees with `run` for every method at several
/// thread counts — the bounded executor is a strict superset, not a fork.
#[test]
fn bounded_executor_agrees_with_unbounded_on_every_method() {
    let prep = prepared(23);
    let vertices: Vec<u32> = (0..prep.network().num_vertices() as u32).step_by(7).collect();
    let queries: Vec<(u32, Rect)> = vertices
        .iter()
        .flat_map(|&v| random_regions(4, 23 + v as u64).into_iter().map(move |r| (v, r)))
        .collect();
    for (label, idx) in all_indexes(&prep) {
        let expected = BatchExecutor::new(1).run(idx.as_ref(), &queries);
        for threads in [1, 3] {
            let outcome = BatchExecutor::new(threads).run_bounded(
                idx.as_ref(),
                &queries,
                &BatchOptions::unlimited(),
            );
            assert!(outcome.is_complete(), "{label} threads={threads}");
            assert_eq!(outcome.completed, queries.len(), "{label}");
            let answers: Vec<bool> = outcome.answers.iter().map(|a| a.unwrap()).collect();
            assert_eq!(answers, expected, "{label} threads={threads}");
        }
    }
}

/// Acceptance criterion: a tiny budget on a large online workload returns
/// partial results with `timed_out == true`, and every completed answer
/// agrees with an untimed evaluation of that query.
#[test]
fn tiny_budget_yields_exact_partial_prefix() {
    let prep = Arc::new(PreparedNetwork::new(random_network(2000, 8000, 0.3, 37)));
    let online = OnlineReach::new(prep.clone());
    let regions = random_regions(8, 41);
    let queries: Vec<(u32, Rect)> = (0..2000u32)
        .flat_map(|v| regions.iter().map(move |r| (v, *r)))
        .collect();
    assert_eq!(queries.len(), 16_000);

    // One worker: the completed set is exactly a prefix of the input.
    let outcome = BatchExecutor::new(1).run_bounded(
        &online,
        &queries,
        &BatchOptions::unlimited().with_budget(Duration::from_millis(2)),
    );
    assert!(outcome.timed_out, "16k online BFS queries cannot finish in 2ms");
    assert!(!outcome.cancelled);
    assert!(outcome.errors.is_empty());
    assert!(outcome.completed < queries.len(), "partial by construction");
    for (i, answer) in outcome.answers.iter().enumerate() {
        match answer {
            Some(answer) => {
                assert!(i < outcome.completed, "answers form a prefix with one worker");
                let (v, r) = &queries[i];
                assert_eq!(*answer, online.query(*v, r), "query {i} must be exact");
            }
            None => assert!(i >= outcome.completed, "unanswered queries follow the prefix"),
        }
    }
    // The prefix cost equals the sequential cost over the same queries.
    let mut expected_cost = QueryCost::default();
    for (v, r) in &queries[..outcome.completed] {
        expected_cost.accumulate(&online.query_with_cost(*v, r).1);
    }
    assert_eq!(outcome.cost, expected_cost);
}

/// An index wrapper that cancels the shared token after a fixed number of
/// queries — a deterministic stand-in for a caller cancelling mid-batch.
struct CancelAfter<I> {
    inner: I,
    token: CancelToken,
    countdown: AtomicUsize,
}

impl<I: RangeReachIndex> RangeReachIndex for CancelAfter<I> {
    fn num_vertices(&self) -> usize {
        self.inner.num_vertices()
    }
    fn query_unchecked(&self, v: u32, region: &Rect) -> bool {
        if self.countdown.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.token.cancel();
        }
        self.inner.query_unchecked(v, region)
    }
    fn index_bytes(&self) -> usize {
        self.inner.index_bytes()
    }
    fn name(&self) -> &'static str {
        "cancel-after"
    }
}

/// Cancelling mid-batch stops at the next query boundary with the
/// already-computed answers retained.
#[test]
fn cancellation_mid_batch_keeps_partial_answers() {
    let prep = prepared(53);
    let token = CancelToken::new();
    const STOP_AFTER: usize = 25;
    let index = CancelAfter {
        inner: OnlineReach::new(Arc::new(prepared(53))),
        token: token.clone(),
        countdown: AtomicUsize::new(STOP_AFTER),
    };
    let queries: Vec<(u32, Rect)> = (0..100u32)
        .map(|v| (v, Rect::new(0.0, 0.0, 100.0, 100.0)))
        .collect();
    let outcome = BatchExecutor::new(1).run_bounded(
        &index,
        &queries,
        &BatchOptions::unlimited().with_cancel(token.clone()),
    );
    assert!(outcome.cancelled);
    assert!(!outcome.timed_out);
    assert_eq!(outcome.completed, STOP_AFTER, "one worker stops exactly at the flip");
    for (i, answer) in outcome.answers.iter().enumerate() {
        assert_eq!(answer.is_some(), i < STOP_AFTER, "query {i}");
        if let Some(answer) = answer {
            let (v, r) = &queries[i];
            assert_eq!(*answer, prep.range_reach_bfs(*v, r), "partial answers stay exact");
        }
    }
    assert!(token.is_cancelled());
}

/// The fallback index degrades to exact online answers on a cyclic random
/// network, under both degradation triggers.
#[test]
fn fallback_degrades_exactly_on_random_networks() {
    let prep = Arc::new(prepared(67));
    let regions = random_regions(10, 71);

    // Memory-capped: the 3DReach build is discarded.
    let capped = FallbackIndex::build(
        prep.clone(),
        &FallbackOptions::unlimited().with_memory_cap(8),
        {
            let prep = prep.clone();
            move || gsr_core::methods::ThreeDReach::build(&prep, SccSpatialPolicy::Replicate)
        },
    );
    assert!(capped.is_degraded());

    // Cancelled before the build starts.
    let token = CancelToken::new();
    token.cancel();
    let cancelled = FallbackIndex::build(
        prep.clone(),
        &FallbackOptions::unlimited().with_cancel(token),
        {
            let prep = prep.clone();
            move || gsr_core::methods::ThreeDReach::build(&prep, SccSpatialPolicy::Replicate)
        },
    );
    assert!(cancelled.is_degraded());

    // Unconstrained: the primary index serves.
    let primary = FallbackIndex::build(prep.clone(), &FallbackOptions::unlimited(), {
        let prep = prep.clone();
        move || gsr_core::methods::ThreeDReach::build(&prep, SccSpatialPolicy::Replicate)
    });
    assert!(!primary.is_degraded());

    for v in (0..prep.network().num_vertices() as u32).step_by(11) {
        for r in &regions {
            let truth = prep.range_reach_bfs(v, r);
            assert_eq!(capped.query(v, r), truth, "capped v={v}");
            assert_eq!(cancelled.query(v, r), truth, "cancelled v={v}");
            assert_eq!(primary.query(v, r), truth, "primary v={v}");
        }
    }

    // Degraded instances still validate input.
    assert!(matches!(
        capped.try_query(u32::MAX, &regions[0]),
        Err(GsrError::InvalidVertex { .. })
    ));
}

/// A batch mixing valid and invalid queries over every method isolates
/// the failures per query and answers the rest.
#[test]
fn mixed_batches_isolate_invalid_queries_on_every_method() {
    let prep = prepared(89);
    let n = prep.network().num_vertices() as u32;
    let good = Rect::new(0.0, 0.0, 100.0, 100.0);
    let nan = Rect { min_x: f64::NAN, min_y: 0.0, max_x: 1.0, max_y: 1.0 };
    let queries = vec![(0u32, good), (n + 5, good), (1, nan), (2, good)];
    for (label, idx) in all_indexes(&prep) {
        let outcome = BatchExecutor::new(2).run_bounded(
            idx.as_ref(),
            &queries,
            &BatchOptions::unlimited(),
        );
        assert_eq!(outcome.completed, 4, "{label}");
        assert_eq!(outcome.errors.len(), 2, "{label}");
        assert!(
            matches!(outcome.errors[0], (1, GsrError::InvalidVertex { .. })),
            "{label}: {:?}",
            outcome.errors
        );
        assert!(
            matches!(outcome.errors[1], (2, GsrError::InvalidRect { .. })),
            "{label}: {:?}",
            outcome.errors
        );
        assert_eq!(outcome.answers[0], Some(idx.query(0, &good)), "{label}");
        assert_eq!(outcome.answers[3], Some(idx.query(2, &good)), "{label}");
        assert!(outcome.answers[1].is_none() && outcome.answers[2].is_none(), "{label}");
    }
}
