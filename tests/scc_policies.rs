//! Section 5 of the paper: the two ways to model the spatial extent of
//! strongly connected components must give identical answers, and the
//! condensation must behave like the original graph.

use gsr_core::methods::{SpaReachBfl, SpaReachInt, ThreeDReach, ThreeDReachRev};
use gsr_core::{PreparedNetwork, RangeReachIndex, SccSpatialPolicy};
use gsr_tests::{random_network, random_regions};

/// Replicate vs MBR must agree on every query for every method that has
/// both variants.
#[test]
fn policies_agree_on_cycle_heavy_networks() {
    for seed in 0..5 {
        // Dense graphs produce large, multi-member spatial SCCs, which is
        // exactly where the two policies differ structurally.
        let net = random_network(120, 1400, 0.6, 900 + seed);
        let prep = PreparedNetwork::new(net);
        assert!(
            prep.stats().largest_scc >= 10,
            "seed {seed}: want a sizable SCC to make the test meaningful"
        );

        let pairs: Vec<(Box<dyn RangeReachIndex>, Box<dyn RangeReachIndex>)> = vec![
            (
                Box::new(SpaReachBfl::build(&prep, SccSpatialPolicy::Replicate)),
                Box::new(SpaReachBfl::build(&prep, SccSpatialPolicy::Mbr)),
            ),
            (
                Box::new(SpaReachInt::build(&prep, SccSpatialPolicy::Replicate)),
                Box::new(SpaReachInt::build(&prep, SccSpatialPolicy::Mbr)),
            ),
            (
                Box::new(ThreeDReach::build(&prep, SccSpatialPolicy::Replicate)),
                Box::new(ThreeDReach::build(&prep, SccSpatialPolicy::Mbr)),
            ),
            (
                Box::new(ThreeDReachRev::build(&prep, SccSpatialPolicy::Replicate)),
                Box::new(ThreeDReachRev::build(&prep, SccSpatialPolicy::Mbr)),
            ),
        ];

        for region in random_regions(20, seed * 3 + 1) {
            for v in (0..120).step_by(7) {
                for (a, b) in &pairs {
                    assert_eq!(
                        a.query(v, &region),
                        b.query(v, &region),
                        "{} policies disagree at v={v}, region={region}",
                        a.name()
                    );
                }
            }
        }
    }
}

/// The MBR policy indexes one box per spatial component; with partial
/// overlap the candidate must be refined, never assumed. This crafts the
/// adversarial case: an SCC whose MBR intersects the region while none of
/// its member points do.
#[test]
fn mbr_partial_overlap_is_refined() {
    use gsr_core::GeosocialNetwork;
    use gsr_geo::{Point, Rect};
    use gsr_graph::GraphBuilder;

    // SCC {0, 1} with members at opposite corners: MBR = [0,10]^2.
    // Query region sits in the middle-left, inside the MBR but away from
    // both points.
    let mut b = GraphBuilder::new(3);
    b.add_edge(0, 1);
    b.add_edge(1, 0);
    b.add_edge(2, 0);
    let points = vec![
        Some(Point::new(0.0, 0.0)),
        Some(Point::new(10.0, 10.0)),
        None,
    ];
    let prep = PreparedNetwork::new(GeosocialNetwork::new(b.build(), points).unwrap());

    let hole = Rect::new(2.0, 4.0, 4.0, 6.0); // inside MBR, contains no point
    let corner = Rect::new(-1.0, -1.0, 1.0, 1.0); // contains member (0,0)

    for policy in [SccSpatialPolicy::Replicate, SccSpatialPolicy::Mbr] {
        let idx = ThreeDReach::build(&prep, policy);
        assert!(!idx.query(2, &hole), "{policy:?}: MBR hit must be refined to FALSE");
        assert!(idx.query(2, &corner), "{policy:?}: member point inside region");
        let spa = SpaReachBfl::build(&prep, policy);
        assert!(!spa.query(2, &hole), "{policy:?}: SpaReach refinement");
        assert!(spa.query(2, &corner));
    }
}

/// Condensation invariants on arbitrary graphs: intra-SCC queries behave
/// reflexively, and all members of an SCC give identical answers.
#[test]
fn scc_members_are_interchangeable_query_vertices() {
    for seed in 0..4 {
        let net = random_network(100, 900, 0.5, 50 + seed);
        let prep = PreparedNetwork::new(net);
        let idx = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
        let regions = random_regions(10, seed);

        // Group vertices by component and compare answers within groups.
        for c in 0..prep.num_components() as u32 {
            let members = prep.members(c);
            if members.len() < 2 {
                continue;
            }
            let reference = members[0];
            for region in &regions {
                let expected = idx.query(reference, region);
                for &m in &members[1..] {
                    assert_eq!(
                        idx.query(m, region),
                        expected,
                        "members {reference} and {m} of SCC {c} must agree"
                    );
                }
            }
        }
    }
}
