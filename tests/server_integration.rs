//! End-to-end tests of the TCP query service: the real `gsr serve` code
//! path (CLI layer included) on a loopback socket, exercised by concurrent
//! pipelining clients, malformed input, per-request budgets and a graceful
//! `SHUTDOWN`.

use gsr_cli::{exit_code, parse_args, run};
use gsr_core::methods::ThreeDReach;
use gsr_core::{RangeReachIndex, SccSpatialPolicy};
use gsr_server::{QueryServer, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A `Write` sink the serve thread and the test can share: the test polls
/// it for the `listening on ADDR` line to learn the OS-assigned port.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().unwrap()).into_owned()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn args(s: &[&str]) -> Vec<String> {
    s.iter().map(|x| x.to_string()).collect()
}

/// Generates a network, snapshots one method, and starts `gsr serve` on a
/// loopback port in a background thread. Returns the address, the serve
/// thread handle, its shared output, and the network path for oracle use.
struct ServeFixture {
    addr: SocketAddr,
    out: SharedBuf,
    thread: std::thread::JoinHandle<()>,
    dir: std::path::PathBuf,
    net_path: String,
}

fn start_serve(tag: &str, extra: &[&str]) -> ServeFixture {
    let dir = std::env::temp_dir().join(format!("gsr_server_integration_{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    let net = dir.join("net.gsr");
    let snap = dir.join("idx.snap");
    let net_path = net.to_string_lossy().to_string();
    let snap_path = snap.to_string_lossy().to_string();

    run(
        parse_args(&args(&[
            "generate", "--preset", "yelp", "--scale", "0.02", "--out", &net_path,
        ]))
        .unwrap(),
        &mut Vec::new(),
    )
    .unwrap();
    run(
        parse_args(&args(&[
            "build", &net_path, "--method", "3dreach", "--save", &snap_path,
        ]))
        .unwrap(),
        &mut Vec::new(),
    )
    .unwrap();

    let mut serve_args =
        vec!["serve", "--load", &snap_path, "--port", "0", "--threads", "2"];
    serve_args.extend_from_slice(extra);
    let cmd = parse_args(&args(&serve_args)).unwrap();
    let out = SharedBuf::default();
    let thread = {
        let mut out = out.clone();
        std::thread::spawn(move || {
            run(cmd, &mut out).expect("serve must exit cleanly");
        })
    };

    // Poll for the announced address (the serve thread prints it before
    // blocking on the accept loop).
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        let text = out.contents();
        if let Some(line) = text.lines().find(|l| l.starts_with("listening on ")) {
            break line["listening on ".len()..].parse::<SocketAddr>().unwrap();
        }
        assert!(Instant::now() < deadline, "server never announced an address:\n{text}");
        std::thread::sleep(Duration::from_millis(10));
    };
    ServeFixture { addr, out, thread, dir, net_path }
}

fn connect(addr: SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (reader, stream)
}

fn read_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read reply");
    line.trim_end().to_string()
}

#[test]
fn concurrent_pipelined_clients_get_correct_ordered_replies() {
    let fx = start_serve("concurrent", &[]);

    // Oracle: the same method built fresh from the same network.
    let net = gsr_datagen::io::load_network(std::path::Path::new(&fx.net_path)).unwrap();
    let prep = gsr_core::PreparedNetwork::new(net);
    let oracle = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
    let n = prep.network().num_vertices() as u32;
    let space = prep.space();

    std::thread::scope(|scope| {
        for client in 0..4u32 {
            let oracle = &oracle;
            let space = &space;
            scope.spawn(move || {
                let (mut reader, mut stream) = connect(fx.addr);
                // Pipeline a full batch before reading anything.
                let queries: Vec<(u32, gsr_geo::Rect)> = (0..25)
                    .map(|i| {
                        let v = (client * 31 + i * 7) % n;
                        let w = space.width() * (0.05 + 0.2 * ((i % 5) as f64));
                        let x = space.min_x + (i as f64 / 25.0) * space.width();
                        let y = space.min_y + ((i * 13 % 25) as f64 / 25.0) * space.height();
                        (v, gsr_geo::Rect { min_x: x, min_y: y, max_x: x + w, max_y: y + w })
                    })
                    .collect();
                let mut request = String::new();
                for (v, r) in &queries {
                    request.push_str(&format!(
                        "REACH {v} {} {} {} {}\n",
                        r.min_x, r.min_y, r.max_x, r.max_y
                    ));
                }
                stream.write_all(request.as_bytes()).unwrap();

                for (v, r) in &queries {
                    let reply = read_line(&mut reader);
                    let expect = if oracle.query(*v, r) { "TRUE" } else { "FALSE" };
                    assert_eq!(reply, expect, "client {client}: v={v} r={r}");
                }
            });
        }
    });

    shutdown_and_join(fx);
}

/// The result cache must be invisible to clients (answers identical to a
/// fresh uncached index) while its counters show up in `STATS`.
#[test]
fn cached_server_agrees_with_oracle_under_concurrent_clients() {
    let fx = start_serve("cache", &["--cache-entries", "256"]);

    let net = gsr_datagen::io::load_network(std::path::Path::new(&fx.net_path)).unwrap();
    let prep = gsr_core::PreparedNetwork::new(net);
    let oracle = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
    let n = prep.network().num_vertices() as u32;
    let space = prep.space();

    // All clients pipeline the SAME 25 queries twice, so every later probe
    // of a key the sub-batch already answered can be served by the cache.
    let queries: Vec<(u32, gsr_geo::Rect)> = (0..25)
        .map(|i| {
            let v = (i * 7) % n;
            let w = space.width() * (0.05 + 0.2 * ((i % 5) as f64));
            let x = space.min_x + (i as f64 / 25.0) * space.width();
            let y = space.min_y + ((i * 13 % 25) as f64 / 25.0) * space.height();
            (v, gsr_geo::Rect { min_x: x, min_y: y, max_x: x + w, max_y: y + w })
        })
        .collect();

    std::thread::scope(|scope| {
        for client in 0..4u32 {
            let oracle = &oracle;
            let queries = &queries;
            scope.spawn(move || {
                let (mut reader, mut stream) = connect(fx.addr);
                let mut request = String::new();
                for (v, r) in queries.iter().chain(queries) {
                    request.push_str(&format!(
                        "REACH {v} {} {} {} {}\n",
                        r.min_x, r.min_y, r.max_x, r.max_y
                    ));
                }
                stream.write_all(request.as_bytes()).unwrap();
                for (v, r) in queries.iter().chain(queries) {
                    let reply = read_line(&mut reader);
                    let expect = if oracle.query(*v, r) { "TRUE" } else { "FALSE" };
                    assert_eq!(reply, expect, "client {client}: v={v} r={r}");
                }
            });
        }
    });

    // Every valid REACH probes the cache exactly once: 4 clients x 50.
    let (mut reader, mut stream) = connect(fx.addr);
    stream.write_all(b"STATS\n").unwrap();
    let stats = read_line(&mut reader);
    let field = |name: &str| -> u64 {
        stats
            .split_whitespace()
            .find_map(|kv| kv.strip_prefix(&format!("{name}=")))
            .unwrap_or_else(|| panic!("{name} missing from {stats}"))
            .parse()
            .unwrap()
    };
    assert_eq!(field("cache_hits") + field("cache_misses"), 200, "{stats}");
    assert!(field("cache_hits") > 0, "repeated queries must hit: {stats}");
    assert!(field("cache_misses") >= 25, "each distinct key misses once: {stats}");
    assert_eq!(field("cache_evictions"), 0, "256 entries fit 25 keys: {stats}");
    assert_eq!(field("errors"), 0, "{stats}");

    shutdown_and_join(fx);
}

#[test]
fn malformed_and_out_of_range_requests_get_protocol_errors() {
    let fx = start_serve("errors", &[]);
    let (mut reader, mut stream) = connect(fx.addr);

    stream
        .write_all(
            b"REACH 0 0 0 1 1\n\
              FETCH 1\n\
              REACH not-a-vertex 0 0 1 1\n\
              REACH 99999999 0 0 1 1\n\
              REACH 0 5 5 1 1\n\
              REACH 0 NaN 0 1 1\n\
              \n\
              STATS\n",
        )
        .unwrap();

    let first = read_line(&mut reader);
    assert!(first == "TRUE" || first == "FALSE", "{first}");
    assert!(read_line(&mut reader).starts_with("ERR 2 unknown command"));
    assert!(read_line(&mut reader).starts_with("ERR 2 REACH: vertex id"));
    assert!(read_line(&mut reader).starts_with("ERR 4 invalid query vertex"));
    assert!(read_line(&mut reader).starts_with("ERR 4 invalid query rectangle"));
    assert!(read_line(&mut reader).starts_with("ERR 4 invalid query rectangle"));
    let stats = read_line(&mut reader);
    assert!(stats.starts_with("STATS queries="), "{stats}");
    // 4 REACH lines became queries (1 answer + 3 query errors); 2 were
    // protocol errors; the blank line was ignored.
    assert!(stats.contains("queries=4"), "{stats}");
    assert!(stats.contains("errors=5"), "{stats}");

    shutdown_and_join(fx);
}

/// `STATS` must report the full percentile set including `p999_us`, and
/// `RESET` must zero the counters (including the cache tallies) while
/// leaving the loaded index and the cached entries untouched. Argument
/// validation matches the other no-argument commands.
#[test]
fn stats_reports_p999_and_reset_zeroes_counters_but_not_the_index() {
    let fx = start_serve("reset", &["--cache-entries", "64"]);
    let (mut reader, mut stream) = connect(fx.addr);

    // Two separate flushes: the second probe of the same query must be
    // served from the cache populated by the first.
    stream.write_all(b"REACH 0 0 0 1 1\n").unwrap();
    let first = read_line(&mut reader);
    assert!(first == "TRUE" || first == "FALSE", "{first}");
    stream.write_all(b"REACH 0 0 0 1 1\nFETCH\nSTATS\n").unwrap();
    assert_eq!(read_line(&mut reader), first, "second probe is the cached answer");
    assert!(read_line(&mut reader).starts_with("ERR 2 unknown command"));
    let stats = read_line(&mut reader);
    assert!(stats.contains("queries=2"), "{stats}");
    assert!(stats.contains("errors=1"), "{stats}");
    assert!(stats.contains(" p999_us="), "STATS must report p999: {stats}");
    assert!(stats.contains("cache_hits=1"), "{stats}");
    assert!(stats.contains("cache_misses=1"), "{stats}");
    let index_bytes = stats
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("index_bytes="))
        .unwrap()
        .parse::<u64>()
        .unwrap();
    assert!(index_bytes > 0, "{stats}");
    // Restart-cost fields: the server was started from a v3 snapshot, so
    // STATS must carry the load time and wire-format version.
    assert!(stats.contains(" load_ms="), "STATS must report load_ms: {stats}");
    assert!(
        stats.contains("snapshot_format=3"),
        "STATS must report the served snapshot's format: {stats}"
    );

    // RESET takes no arguments, like STATS and SHUTDOWN.
    stream.write_all(b"RESET now\n").unwrap();
    assert!(read_line(&mut reader).starts_with("ERR 2 RESET takes no arguments"));

    stream.write_all(b"RESET\nSTATS\n").unwrap();
    assert_eq!(read_line(&mut reader), "OK reset");
    let stats = read_line(&mut reader);
    assert!(
        stats.contains("queries=0 errors=0 p50_us=0 p99_us=0 p999_us=0"),
        "RESET must zero counters and the histogram: {stats}"
    );
    assert!(stats.contains("cache_hits=0"), "{stats}");
    assert!(stats.contains("cache_misses=0"), "{stats}");
    assert!(
        stats.contains(&format!("index_bytes={index_bytes}")),
        "RESET must not touch the loaded index: {stats}"
    );
    assert!(
        stats.contains("snapshot_format=3"),
        "RESET must not wipe the restart-cost fields: {stats}"
    );

    // The index still answers, and the cached entry survived the reset.
    stream.write_all(b"REACH 0 0 0 1 1\nSTATS\n").unwrap();
    assert_eq!(read_line(&mut reader), first, "index must answer as before the RESET");
    let stats = read_line(&mut reader);
    assert!(stats.contains("queries=1"), "{stats}");
    assert!(stats.contains("cache_hits=1"), "cached entries survive RESET: {stats}");
    assert!(stats.contains("cache_misses=0"), "{stats}");

    shutdown_and_join(fx);
}

#[test]
fn zero_budget_times_out_every_query() {
    let fx = start_serve("budget", &["--budget-ms", "0"]);
    let (mut reader, mut stream) = connect(fx.addr);

    stream.write_all(b"REACH 0 0 0 1 1\nREACH 1 0 0 1 1\n").unwrap();
    for _ in 0..2 {
        let reply = read_line(&mut reader);
        assert!(reply.starts_with("ERR 5 time budget of 0 ms exceeded"), "{reply}");
    }
    shutdown_and_join(fx);
}

#[test]
fn serve_with_a_corrupt_snapshot_is_a_load_error_exit() {
    let dir = std::env::temp_dir().join("gsr_server_integration_corrupt");
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("bad.snap");
    std::fs::write(&snap, b"GSRSNAP\0garbage").unwrap();
    let snap_path = snap.to_string_lossy().to_string();

    let e = run(
        parse_args(&args(&["serve", "--load", &snap_path])).unwrap(),
        &mut Vec::new(),
    )
    .unwrap_err();
    assert_eq!(exit_code(e.as_ref()), 3, "{e}");
    std::fs::remove_dir_all(&dir).ok();
}

/// In-process variant pinning the graceful-shutdown contract of
/// [`QueryServer`] directly: cancelling the token (not a client SHUTDOWN)
/// must also stop `run()`.
#[test]
fn cancel_token_stops_the_server_without_a_client() {
    let prep = gsr_core::paper_example::prepared();
    let index: Arc<dyn RangeReachIndex> =
        Arc::new(ThreeDReach::build(&prep, SccSpatialPolicy::Replicate));
    let server =
        QueryServer::bind(("127.0.0.1", 0), index, ServerConfig::default()).unwrap();
    let token = server.cancel_token();
    let thread = std::thread::spawn(move || server.run().unwrap());
    std::thread::sleep(Duration::from_millis(50));
    token.cancel();
    thread.join().expect("run() must return after cancel");
}

/// `STATS` on its own connection, retrying while admission control still
/// sheds (used right after flood tests drop their held connections).
fn stats_with_retry(addr: SocketAddr) -> String {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (mut reader, mut stream) = connect(addr);
        stream.write_all(b"STATS\n").unwrap();
        let reply = read_line(&mut reader);
        if reply.starts_with("STATS ") {
            return reply;
        }
        assert!(Instant::now() < deadline, "STATS never got through: {reply}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn stat_field(stats: &str, name: &str) -> u64 {
    stats
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix(&format!("{name}=")))
        .unwrap_or_else(|| panic!("{name} missing from {stats}"))
        .parse()
        .unwrap()
}

/// RESET zeroes counters but keeps both the index and the cached entries;
/// RELOAD swaps the index (here: the same snapshot, so answers must not
/// change) and *clears* the cache, so the next probe misses again. A
/// RELOAD of a missing path is a typed load error that leaves the old
/// index serving.
#[test]
fn reset_keeps_the_cache_where_reload_clears_it() {
    let fx = start_serve("reload", &["--cache-entries", "64"]);
    let snap_path = fx.dir.join("idx.snap").to_string_lossy().to_string();
    let (mut reader, mut stream) = connect(fx.addr);

    // Prime the cache, then RESET: the entry must survive.
    stream.write_all(b"REACH 0 0 0 1 1\n").unwrap();
    let first = read_line(&mut reader);
    assert!(first == "TRUE" || first == "FALSE", "{first}");
    stream.write_all(b"RESET\nREACH 0 0 0 1 1\nSTATS\n").unwrap();
    assert_eq!(read_line(&mut reader), "OK reset");
    assert_eq!(read_line(&mut reader), first);
    let stats = read_line(&mut reader);
    assert_eq!(stat_field(&stats, "cache_hits"), 1, "RESET keeps cache entries: {stats}");
    assert_eq!(stat_field(&stats, "reloads"), 0, "{stats}");
    let index_bytes = stat_field(&stats, "index_bytes");
    assert!(index_bytes > 0, "{stats}");

    // A RELOAD that cannot load is a typed load error; the old index and
    // the cache keep serving.
    stream.write_all(b"RELOAD /nonexistent/never.snap\nREACH 0 0 0 1 1\n").unwrap();
    assert!(read_line(&mut reader).starts_with("ERR 3 "), "missing snapshot is a load error");
    assert_eq!(read_line(&mut reader), first, "old index keeps serving after a failed RELOAD");

    // A real RELOAD swaps the index and clears the cache: the reload
    // counter advances, and the same query must re-miss afterwards.
    stream.write_all(format!("RELOAD {snap_path}\nSTATS\n").as_bytes()).unwrap();
    let reload = read_line(&mut reader);
    assert!(reload.starts_with("OK reload index_bytes="), "{reload}");
    assert!(
        reload.contains(" load_ms="),
        "RELOAD must report its time-to-first-query: {reload}"
    );
    let stats = read_line(&mut reader);
    assert_eq!(stat_field(&stats, "reloads"), 1, "{stats}");
    assert_eq!(
        stat_field(&stats, "snapshot_format"),
        3,
        "a successful RELOAD refreshes the restart-cost fields: {stats}"
    );
    let hits_before = stat_field(&stats, "cache_hits");
    let misses_before = stat_field(&stats, "cache_misses");
    stream.write_all(b"REACH 0 0 0 1 1\nSTATS\n").unwrap();
    assert_eq!(read_line(&mut reader), first, "the reloaded snapshot answers identically");
    let stats = read_line(&mut reader);
    assert_eq!(stat_field(&stats, "cache_hits"), hits_before, "RELOAD clears the cache: {stats}");
    assert_eq!(stat_field(&stats, "cache_misses"), misses_before + 1, "{stats}");
    assert_eq!(stat_field(&stats, "index_bytes"), index_bytes, "same snapshot, same size");

    shutdown_and_join(fx);
}

/// With `--max-conns` at the worker count, held connections pin every
/// admission slot: new arrivals get one `ERR 7 busy` line and a close,
/// counted under `rejected=`, and the slots come back once the holders
/// leave.
#[test]
fn connections_past_max_conns_are_rejected_with_busy() {
    let fx = start_serve("shed", &["--max-conns", "2"]);

    let mut holders = Vec::new();
    for _ in 0..2 {
        let (mut reader, mut stream) = connect(fx.addr);
        stream.write_all(b"REACH 0 0 0 1 1\n").unwrap();
        let reply = read_line(&mut reader);
        assert!(reply == "TRUE" || reply == "FALSE", "{reply}");
        holders.push((reader, stream));
    }
    for k in 0..3 {
        let (mut reader, _stream) = connect(fx.addr);
        let reply = read_line(&mut reader);
        assert!(
            reply.starts_with("ERR 7 busy retry_ms="),
            "arrival {k} must be turned away typed: {reply}"
        );
        let mut rest = String::new();
        assert_eq!(reader.read_line(&mut rest).unwrap(), 0, "busy closes the connection");
    }
    drop(holders);

    let stats = stats_with_retry(fx.addr);
    assert_eq!(stat_field(&stats, "rejected"), 3, "{stats}");
    assert_eq!(stat_field(&stats, "shed"), 0, "{stats}");
    assert_eq!(stat_field(&stats, "queries"), 2, "only the held connections queried: {stats}");
    assert_eq!(stat_field(&stats, "errors"), 0, "busy refusals are not errors: {stats}");
    assert_eq!(stat_field(&stats, "live"), 1, "slots must come back (STATS counts itself)");

    shutdown_and_join(fx);
}

/// Connection-lifecycle limits through the CLI flags: an oversize line is
/// refused with `ERR 2` and a close, a blank-line flood is ignored without
/// counters moving, and a mid-pipeline disconnect still answers every
/// complete line plus one typed error for the torn tail — with `STATS`
/// reconciling the whole session exactly.
#[test]
fn lifecycle_limits_refuse_oversize_blank_and_torn_input() {
    let fx = start_serve("limits", &["--max-line", "64"]);

    // Oversize: refused, typed, closed.
    let (mut reader, mut stream) = connect(fx.addr);
    let long = format!("REACH {}\n", "9".repeat(200));
    stream.write_all(long.as_bytes()).unwrap();
    assert_eq!(read_line(&mut reader), "ERR 2 line too long (max 64 bytes)");
    let mut rest = String::new();
    assert_eq!(reader.read_line(&mut rest).unwrap(), 0, "oversize closes the connection");

    // Blank-line flood: ignored entirely; the connection stays usable.
    let (mut reader, mut stream) = connect(fx.addr);
    let flood = "\n".repeat(10_000);
    stream.write_all(flood.as_bytes()).unwrap();
    stream.write_all(b"REACH 0 0 0 1 1\n").unwrap();
    let answer = read_line(&mut reader);
    assert!(answer == "TRUE" || answer == "FALSE", "{answer}");
    drop((reader, stream));

    // Mid-pipeline disconnect: five complete queries plus a torn tail,
    // then a half-close. Every complete line answers; the tail is one
    // typed protocol error.
    let (mut reader, mut stream) = connect(fx.addr);
    let mut request = String::new();
    for v in 0..5 {
        request.push_str(&format!("REACH {v} 0 0 1 1\n"));
    }
    request.push_str("REACH 0 0 0"); // torn: no newline, wrong arity
    stream.write_all(request.as_bytes()).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut replies = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap() == 0 {
            break;
        }
        replies.push(line.trim_end().to_string());
    }
    assert_eq!(replies.len(), 6, "5 answers + 1 torn-tail error: {replies:?}");
    for (v, reply) in replies[..5].iter().enumerate() {
        assert!(reply == "TRUE" || reply == "FALSE", "query {v}: {reply}");
    }
    assert!(replies[5].starts_with("ERR 2 "), "torn tail must be typed: {}", replies[5]);

    // Exact reconciliation of the whole session: 1 (blank-flood probe)
    // + 5 (pipeline) queries; 1 oversize + 1 torn tail = 2 errors.
    let stats = stats_with_retry(fx.addr);
    assert_eq!(stat_field(&stats, "queries"), 6, "{stats}");
    assert_eq!(stat_field(&stats, "errors"), 2, "{stats}");
    assert_eq!(stat_field(&stats, "shed") + stat_field(&stats, "rejected"), 0, "{stats}");

    shutdown_and_join(fx);
}

fn shutdown_and_join(fx: ServeFixture) {
    let (mut reader, mut stream) = connect(fx.addr);
    stream.write_all(b"SHUTDOWN\n").unwrap();
    assert_eq!(read_line(&mut reader), "OK shutdown");
    fx.thread.join().expect("serve thread must exit cleanly after SHUTDOWN");
    let text = fx.out.contents();
    assert!(text.contains("server stopped"), "{text}");
    // Startup logging: `serve --load` announces how the snapshot loaded
    // (format, mapping) and its time-to-first-query.
    assert!(text.contains("loaded ") && text.contains("format v3"), "{text}");
    assert!(text.contains("ready to serve in "), "{text}");
    std::fs::remove_dir_all(&fx.dir).ok();
}
