//! Sharded scatter-gather routing vs a single-index oracle.
//!
//! The soundness claim behind `gsr_core::partition`: check-in points are
//! *partitioned* across tiles while every tile keeps the full social
//! graph, so `RangeReach(G, v, R)` equals the OR over shards of the
//! per-shard answer. These tests exercise that claim at 1/2/4/8 shards,
//! under both SCC spatial policies, with query rectangles deliberately
//! chosen to straddle tile boundaries — plus the pruning contract that a
//! rectangle disjoint from every shard MBR answers FALSE with **zero**
//! probes executed.

use gsr_core::methods::ThreeDReach;
use gsr_core::{
    partition_tiles, tile_network, BatchExecutor, BatchQuery, PreparedNetwork, RangeReachIndex,
    SccSpatialPolicy, ShardMember, ShardedIndex,
};
use gsr_datagen::NetworkSpec;
use gsr_geo::Rect;
use std::sync::Arc;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn dataset() -> PreparedNetwork {
    PreparedNetwork::new(NetworkSpec::yelp(0.05).generate())
}

/// Partitions `prep`'s network into `shards` tiles and assembles the
/// scatter-gather router, one 3DReach per tile under `policy`.
fn build_sharded(
    prep: &PreparedNetwork,
    shards: usize,
    policy: SccSpatialPolicy,
) -> ShardedIndex {
    let net = prep.network();
    let members: Vec<ShardMember> = partition_tiles(net, shards)
        .iter()
        .map(|tile| {
            let tile_net = tile_network(net, tile).expect("tile network");
            let tile_prep = PreparedNetwork::new(tile_net);
            ShardMember {
                index: Arc::new(ThreeDReach::build(&tile_prep, policy)),
                mbr: tile.mbr,
            }
        })
        .collect();
    ShardedIndex::new(members).expect("assemble sharded index")
}

/// The query rectangles: per-tile MBRs (fully inside one tile), bands
/// spanning each pair of consecutive tiles' MBRs (guaranteed to straddle
/// the cut between them), the global extent, and slivers around tile
/// corners.
fn boundary_rects(prep: &PreparedNetwork, shards: usize) -> Vec<Rect> {
    let net = prep.network();
    let mbrs: Vec<Rect> =
        partition_tiles(net, shards).iter().filter_map(|t| t.mbr).collect();
    let mut rects = Vec::new();
    for m in &mbrs {
        rects.push(*m);
        // A sliver hugging the tile's min corner: partial overlap with
        // this tile, possibly reaching into a neighbor.
        rects.push(Rect::new(
            m.min_x - 0.5,
            m.min_y - 0.5,
            m.min_x + m.width() * 0.25,
            m.min_y + m.height() * 0.25,
        ));
    }
    for pair in mbrs.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        // A band from a's center to b's center straddles the cut line
        // between the two tiles by construction.
        let (acx, acy) = ((a.min_x + a.max_x) / 2.0, (a.min_y + a.max_y) / 2.0);
        let (bcx, bcy) = ((b.min_x + b.max_x) / 2.0, (b.min_y + b.max_y) / 2.0);
        rects.push(Rect::new(
            acx.min(bcx),
            acy.min(bcy),
            acx.max(bcx),
            acy.max(bcy),
        ));
    }
    if let Some(first) = mbrs.first() {
        let global = mbrs.iter().fold(*first, |g, m| {
            Rect::new(
                g.min_x.min(m.min_x),
                g.min_y.min(m.min_y),
                g.max_x.max(m.max_x),
                g.max_y.max(m.max_y),
            )
        });
        rects.push(global);
    }
    rects
}

/// Every vertex (stride-sampled) x every boundary rectangle, as a batch.
fn queries_for(prep: &PreparedNetwork, rects: &[Rect]) -> Vec<BatchQuery> {
    let n = prep.network().num_vertices() as u32;
    let mut queries = Vec::new();
    for v in (0..n).step_by(7) {
        for r in rects {
            queries.push((v, *r));
        }
    }
    queries
}

#[test]
fn sharded_answers_match_the_single_index_oracle() {
    let prep = dataset();
    let exec = BatchExecutor::new(1);
    for policy in [SccSpatialPolicy::Replicate, SccSpatialPolicy::Mbr] {
        let oracle = ThreeDReach::build(&prep, policy);
        for shards in SHARD_COUNTS {
            let sharded = build_sharded(&prep, shards, policy);
            assert_eq!(sharded.num_shards(), shards);
            let queries = queries_for(&prep, &boundary_rects(&prep, shards));
            let want = exec.run(&oracle, &queries);
            // Scatter path (the server's batch route) ...
            let got = sharded.scatter(&exec, &queries);
            assert_eq!(
                got, want,
                "{policy:?} x{shards}: scatter disagrees with the oracle"
            );
            // ... and the per-query route path must agree too.
            for (i, (v, r)) in queries.iter().enumerate().step_by(11) {
                assert_eq!(
                    sharded.query(*v, r),
                    want[i],
                    "{policy:?} x{shards}: route({v}, {r}) disagrees"
                );
            }
        }
    }
}

#[test]
fn rectangles_outside_every_mbr_answer_false_with_zero_probes() {
    let prep = dataset();
    let exec = BatchExecutor::new(1);
    for shards in SHARD_COUNTS {
        let sharded = build_sharded(&prep, shards, SccSpatialPolicy::Replicate);
        let mbrs: Vec<Rect> = sharded.members().iter().filter_map(|m| m.mbr).collect();
        assert!(!mbrs.is_empty());
        let max_x = mbrs.iter().fold(f64::MIN, |acc, m| acc.max(m.max_x));
        let max_y = mbrs.iter().fold(f64::MIN, |acc, m| acc.max(m.max_y));
        let outside = Rect::new(max_x + 10.0, max_y + 10.0, max_x + 20.0, max_y + 20.0);
        for m in &mbrs {
            assert!(!m.intersects(&outside), "fixture rect must miss every MBR");
        }

        let n = prep.network().num_vertices() as u32;
        let queries: Vec<BatchQuery> = (0..n).step_by(5).map(|v| (v, outside)).collect();

        sharded.reset_shard_stats();
        let scatter_answers = sharded.scatter(&exec, &queries);
        assert!(
            scatter_answers.iter().all(|a| !a),
            "{shards} shards: nothing is reachable outside every MBR"
        );
        assert_eq!(sharded.probes(), 0, "{shards} shards: scatter must not probe");
        assert_eq!(
            sharded.pruned(),
            (shards * queries.len()) as u64,
            "{shards} shards: every shard is pruned for every query"
        );

        sharded.reset_shard_stats();
        for &(v, r) in queries.iter().step_by(3) {
            assert!(!sharded.query(v, &r));
        }
        assert_eq!(sharded.probes(), 0, "{shards} shards: route must not probe");
    }
}

#[test]
fn sharded_snapshot_round_trips_through_the_store() {
    let prep = dataset();
    let exec = BatchExecutor::new(1);
    let net = prep.network();
    let tiles = partition_tiles(net, 4);
    let built: Vec<(gsr_store::SnapshotIndex, Option<Rect>)> = tiles
        .iter()
        .map(|tile| {
            let tile_net = tile_network(net, tile).expect("tile network");
            let tile_prep = PreparedNetwork::new(tile_net);
            (
                gsr_store::SnapshotIndex::ThreeDReach(ThreeDReach::build(
                    &tile_prep,
                    SccSpatialPolicy::Replicate,
                )),
                tile.mbr,
            )
        })
        .collect();

    let dir = std::env::temp_dir().join("gsr_shard_agreement_roundtrip");
    std::fs::remove_dir_all(&dir).ok();
    gsr_store::shard::save_sharded_to_path(&dir, &built).expect("save sharded");
    let (loaded, info) =
        gsr_store::load_served_index(&dir, gsr_store::LoadOptions { trust: false })
            .expect("load sharded");
    assert_eq!(info.format, 3);

    let oracle = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
    let queries = queries_for(&prep, &boundary_rects(&prep, 4));
    let want = exec.run(&oracle, &queries);
    let got = exec.run(loaded.as_ref(), &queries);
    assert_eq!(got, want, "loaded sharded set disagrees with the oracle");
    std::fs::remove_dir_all(&dir).ok();
}
