//! Snapshot round-trip and corruption tests for `gsr-store`.
//!
//! Every method must come back from a snapshot answering bit-identically
//! (answers AND work counters) on a generated network; every corruption —
//! bit flips, truncation, I/O faults mid-stream — must surface as a typed
//! [`GsrError::Load`], never a panic or a silently different index.

use gsr_core::methods::{
    GeoReach, SocReach, SpaReachBfl, SpaReachInt, ThreeDReach, ThreeDReachRev,
};
use gsr_core::{GsrError, PreparedNetwork, RangeReachIndex, SccSpatialPolicy};
use gsr_datagen::faults::FailingReader;
use gsr_datagen::NetworkSpec;
use gsr_store::SnapshotIndex;
use gsr_tests::random_regions;

/// All six methods as saveable snapshots over one prepared network.
fn snapshots(prep: &PreparedNetwork) -> Vec<SnapshotIndex> {
    let p = SccSpatialPolicy::Replicate;
    vec![
        SnapshotIndex::SpaReachBfl(SpaReachBfl::build(prep, p)),
        SnapshotIndex::SpaReachInt(SpaReachInt::build(prep, p)),
        SnapshotIndex::GeoReach(GeoReach::build(prep)),
        SnapshotIndex::SocReach(SocReach::build(prep)),
        SnapshotIndex::ThreeDReach(ThreeDReach::build(prep, p)),
        SnapshotIndex::ThreeDReachRev(ThreeDReachRev::build(prep, p)),
    ]
}

fn generated_prep() -> PreparedNetwork {
    PreparedNetwork::new(NetworkSpec::weeplaces(0.05).generate())
}

#[test]
fn every_method_replays_a_workload_bit_identically() {
    let prep = generated_prep();
    let n = prep.network().num_vertices() as u32;
    let regions = random_regions(20, 0xC0FFEE);

    for original in snapshots(&prep) {
        let mut bytes = Vec::new();
        gsr_store::save(&mut bytes, &original).expect("save");
        let loaded = gsr_store::load(&mut bytes.as_slice()).expect("load");
        assert_eq!(loaded.name(), original.name());
        assert_eq!(loaded.num_vertices(), original.num_vertices());
        assert_eq!(
            loaded.index_bytes(),
            original.index_bytes(),
            "{}: loaded index has a different memory footprint",
            original.name()
        );

        // Replay: every vertex x every region, answers AND QueryCost.
        for v in (0..n).step_by(7) {
            for r in &regions {
                let (a0, c0) = original.query_with_cost(v, r);
                let (a1, c1) = loaded.query_with_cost(v, r);
                assert_eq!(a0, a1, "{}: answer diverged at v={v} r={r}", original.name());
                assert_eq!(c0, c1, "{}: QueryCost diverged at v={v} r={r}", original.name());
            }
        }
    }
}

#[test]
fn snapshot_files_round_trip_through_disk() {
    let dir = std::env::temp_dir().join("gsr_snapshot_roundtrip_test");
    std::fs::create_dir_all(&dir).unwrap();
    let prep = generated_prep();
    let regions = random_regions(8, 42);

    for original in snapshots(&prep) {
        let path = dir.join(format!("{}.snap", original.method_key()));
        gsr_store::save_to_path(&path, &original).expect("save_to_path");
        let shared = gsr_store::load_shared(&path).expect("load_shared");

        // The Arc-shared index serves concurrent readers.
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let shared = std::sync::Arc::clone(&shared);
                let original = &original;
                let regions = &regions;
                scope.spawn(move || {
                    for v in 0..original.num_vertices() as u32 {
                        for r in regions {
                            assert_eq!(shared.query(v, r), original.query(v, r));
                        }
                    }
                });
            }
        });
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Every single-bit flip anywhere in the snapshot must be caught — by the
/// magic/version check, a section CRC, or a structural validator — and
/// reported as `GsrError::Load`. A flip that still loads must at minimum
/// keep the method identity (CRCs make this vanishingly unlikely; the
/// assert documents the contract).
#[test]
fn bit_flips_are_typed_load_errors() {
    let prep = PreparedNetwork::new(NetworkSpec::yelp(0.02).generate());
    for original in snapshots(&prep) {
        let mut bytes = Vec::new();
        gsr_store::save(&mut bytes, &original).expect("save");

        let stride = (bytes.len() / 97).max(1);
        for pos in (0..bytes.len()).step_by(stride) {
            for bit in [0u8, 3, 7] {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= 1 << bit;
                match gsr_store::load(&mut corrupt.as_slice()) {
                    Err(GsrError::Load(msg)) => {
                        assert!(!msg.is_empty(), "empty diagnostic at byte {pos}");
                    }
                    Err(other) => panic!(
                        "{}: flip at byte {pos} bit {bit} gave non-Load error {other:?}",
                        original.name()
                    ),
                    Ok(loaded) => {
                        // A flip in section padding-free payload that still
                        // passes CRC is practically impossible; if it ever
                        // happens the index must still be self-consistent.
                        assert_eq!(loaded.name(), original.name());
                    }
                }
            }
        }
    }
}

#[test]
fn truncations_are_typed_load_errors() {
    let prep = PreparedNetwork::new(NetworkSpec::yelp(0.02).generate());
    for original in snapshots(&prep) {
        let mut bytes = Vec::new();
        gsr_store::save(&mut bytes, &original).expect("save");
        let stride = (bytes.len() / 61).max(1);
        for cut in (0..bytes.len()).step_by(stride) {
            let err = gsr_store::load(&mut &bytes[..cut])
                .expect_err("a truncated snapshot must not load");
            assert!(
                matches!(err, GsrError::Load(_)),
                "{}: cut at {cut} gave {err:?}",
                original.name()
            );
        }
    }
}

/// I/O faults mid-stream (disk error rather than short file) must also map
/// to `GsrError::Load` with the underlying error in the message.
#[test]
fn io_faults_mid_stream_are_typed_load_errors() {
    let prep = PreparedNetwork::new(NetworkSpec::yelp(0.02).generate());
    let original = snapshots(&prep).remove(0);
    let mut bytes = Vec::new();
    gsr_store::save(&mut bytes, &original).expect("save");

    for budget in [0, 1, 8, 11, bytes.len() / 2, bytes.len() - 1] {
        let mut reader = FailingReader::new(bytes.as_slice(), budget);
        let err = gsr_store::load(&mut reader).expect_err("faulted read must not load");
        assert!(matches!(err, GsrError::Load(_)), "budget {budget}: {err:?}");
    }
}

/// Saving a loaded index must reproduce the exact v3 byte stream: the
/// compact layouts (columnar R-tree arenas, delta-compressed labels) are
/// canonical and the section directory is deterministic, so
/// save → load → save is the identity on bytes for every method.
#[test]
fn resaving_a_loaded_snapshot_is_byte_identical() {
    let prep = PreparedNetwork::new(NetworkSpec::yelp(0.02).generate());
    for original in snapshots(&prep) {
        let mut bytes = Vec::new();
        gsr_store::save(&mut bytes, &original).expect("save");
        let loaded = gsr_store::load(&mut bytes.as_slice()).expect("load");
        let mut again = Vec::new();
        gsr_store::save(&mut again, &loaded).expect("re-save");
        assert_eq!(bytes, again, "{}: v3 snapshot is not canonical", original.name());
    }
}

/// A v2 snapshot (framed streaming sections) must still load, and saving
/// what it loads migrates it to v3 with bit-identical answers and work
/// counters — the upgrade path for snapshots on disk.
#[test]
fn v2_snapshots_migrate_to_v3_bit_identically() {
    let prep = PreparedNetwork::new(NetworkSpec::yelp(0.02).generate());
    let n = prep.network().num_vertices() as u32;
    let regions = random_regions(8, 0xBEEF);
    for original in snapshots(&prep) {
        let mut v2 = Vec::new();
        gsr_store::save_v2(&mut v2, &original).expect("save_v2");
        assert_eq!(&v2[8..12], &2u32.to_le_bytes(), "save_v2 must write version 2");
        let from_v2 = gsr_store::load(&mut v2.as_slice()).expect("v2 load");

        let mut v3 = Vec::new();
        gsr_store::save(&mut v3, &from_v2).expect("migrating save");
        assert_eq!(&v3[8..12], &3u32.to_le_bytes(), "save must write version 3");
        let migrated = gsr_store::load(&mut v3.as_slice()).expect("v3 load");

        for v in (0..n).step_by(11) {
            for r in &regions {
                let (a0, c0) = original.query_with_cost(v, r);
                let (a1, c1) = migrated.query_with_cost(v, r);
                assert_eq!(a0, a1, "{}: answer diverged at v={v} r={r}", original.name());
                assert_eq!(c0, c1, "{}: QueryCost diverged at v={v} r={r}", original.name());
            }
        }
    }
}

/// The in-memory load path must not care where the caller's bytes live:
/// a v3 stream read from a misaligned source buffer is realigned into the
/// owned arena and loads identically.
#[test]
fn misaligned_source_buffers_load_identically() {
    let prep = PreparedNetwork::new(NetworkSpec::yelp(0.02).generate());
    let original = snapshots(&prep).remove(0);
    let mut bytes = Vec::new();
    gsr_store::save(&mut bytes, &original).expect("save");

    let regions = random_regions(4, 7);
    for shift in [1usize, 3, 7, 33] {
        // Stage the stream at an odd offset inside a larger buffer, so
        // every section payload the reader sees is misaligned.
        let mut staged = vec![0u8; shift];
        staged.extend_from_slice(&bytes);
        let loaded = gsr_store::load(&mut &staged[shift..])
            .unwrap_or_else(|e| panic!("shift {shift}: {e}"));
        for v in (0..original.num_vertices() as u32).step_by(13) {
            for r in &regions {
                assert_eq!(loaded.query(v, r), original.query(v, r), "shift {shift}");
            }
        }
    }
}

/// `--trust-snapshot` skips only the CRC pass; the structural validators
/// still run. A bit-flip sweep under trusted loading must therefore never
/// panic: every flip either fails structurally with a typed
/// [`GsrError::Load`] or loads into a self-consistent (if wrong-valued)
/// index.
#[test]
fn trusted_loads_of_corrupt_bytes_never_panic() {
    let prep = PreparedNetwork::new(NetworkSpec::yelp(0.02).generate());
    let original = snapshots(&prep).remove(0);
    let mut bytes = Vec::new();
    gsr_store::save(&mut bytes, &original).expect("save");

    let trust = gsr_store::LoadOptions { trust: true };
    let stride = (bytes.len() / 97).max(1);
    for pos in (0..bytes.len()).step_by(stride) {
        for bit in [0u8, 5] {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 1 << bit;
            match gsr_store::load_with(&mut corrupt.as_slice(), trust) {
                Ok(loaded) => {
                    // Structure survived; the index must still answer
                    // without panicking (values may differ — that is the
                    // documented trade of skipping CRCs).
                    let r = random_regions(1, 1)[0];
                    let _ = loaded.query(0, &r);
                }
                Err(GsrError::Load(msg)) => {
                    assert!(!msg.is_empty(), "empty diagnostic at byte {pos}");
                }
                Err(other) => panic!("flip at {pos} bit {bit}: non-Load error {other:?}"),
            }
        }
    }
}

/// A v1 snapshot (pointer-node R-trees, uncompressed labels) carries
/// format version 1 in its header; the loader must reject it with a
/// typed version error, not misparse the payload or panic.
#[test]
fn v1_snapshots_are_rejected_with_a_typed_version_error() {
    let prep = PreparedNetwork::new(NetworkSpec::yelp(0.02).generate());
    for original in snapshots(&prep) {
        let mut bytes = Vec::new();
        gsr_store::save(&mut bytes, &original).expect("save");
        assert_eq!(&bytes[8..12], &3u32.to_le_bytes(), "header must carry version 3");

        // Craft a v1-tagged stream: same magic, version field = 1. The
        // loader must stop at the header — v1 payloads are not parseable
        // as v2 sections, so anything past the version check would be
        // garbage-in.
        let mut v1 = bytes.clone();
        v1[8..12].copy_from_slice(&1u32.to_le_bytes());
        match gsr_store::load(&mut v1.as_slice()) {
            Err(GsrError::Load(msg)) => {
                assert!(
                    msg.contains("version") && msg.contains('1'),
                    "{}: diagnostic must name the unsupported version: {msg}",
                    original.name()
                );
            }
            other => panic!("{}: v1 snapshot gave {other:?}", original.name()),
        }
    }
}

#[test]
fn version_and_method_tag_mismatches_are_diagnosed() {
    let prep = PreparedNetwork::new(NetworkSpec::yelp(0.02).generate());
    let original = snapshots(&prep).remove(0);
    let mut bytes = Vec::new();
    gsr_store::save(&mut bytes, &original).expect("save");

    // Future format version.
    let mut wrong = bytes.clone();
    wrong[8..12].copy_from_slice(&99u32.to_le_bytes());
    let err = gsr_store::load(&mut wrong.as_slice()).unwrap_err();
    match err {
        GsrError::Load(msg) => assert!(msg.contains("version"), "{msg}"),
        other => panic!("{other:?}"),
    }

    // Not a snapshot at all.
    let err = gsr_store::load(&mut &b"GSRSNAPx........"[..]).unwrap_err();
    assert!(matches!(err, GsrError::Load(_)), "{err:?}");

    // Empty input.
    let err = gsr_store::load(&mut &b""[..]).unwrap_err();
    assert!(matches!(err, GsrError::Load(_)), "{err:?}");
}
