//! Pins the zero-allocation guarantee of the steady-state query kernels.
//!
//! Linking `gsr-bench` installs its counting global allocator; this suite
//! runs without the libtest harness (see `Cargo.toml`) so the process is
//! single-threaded and quiet, making the process-global allocation counter
//! an exact measurement.
//!
//! Protocol per (method, SCC policy): one warm-up pass over the whole
//! workload pays the one-time thread-local scratch allocation, then a
//! second identical pass must perform exactly zero heap allocations.

use gsr_bench::{allocation_count, Dataset, ALL_METHODS};
use gsr_core::SccSpatialPolicy;
use gsr_datagen::workload::WorkloadGen;
use gsr_datagen::NetworkSpec;
use gsr_geo::Rect;
use gsr_graph::stats::DegreeBucket;
use gsr_graph::VertexId;

const EXTENT_PCT: f64 = 5.0;
const QUERIES: usize = 300;
const SEED: u64 = 0xD0_5E_ED;

/// Runs the workload once and returns the allocations it performed.
fn allocations_during(queries: &[(VertexId, Rect)], mut run: impl FnMut(VertexId, &Rect)) -> u64 {
    let before = allocation_count();
    for (v, region) in queries {
        run(*v, region);
    }
    allocation_count() - before
}

fn main() {
    let datasets = [
        Dataset::from_spec(&NetworkSpec::weeplaces(0.05)),
        Dataset::from_spec(&NetworkSpec::yelp(0.02)),
    ];
    let bucket = DegreeBucket::PAPER_BUCKETS[DegreeBucket::DEFAULT_INDEX];
    let mut failures = 0usize;
    let mut checks = 0usize;

    for ds in &datasets {
        let w = WorkloadGen::new(&ds.prep).extent_degree(EXTENT_PCT, bucket, QUERIES, SEED);

        for method in ALL_METHODS {
            for policy in [SccSpatialPolicy::Replicate, SccSpatialPolicy::Mbr] {
                if policy == SccSpatialPolicy::Mbr && !method.supports_mbr() {
                    continue;
                }
                let idx = method.build(&ds.prep, policy);
                // Warm-up: first queries may allocate (thread-local scratch).
                for (v, region) in &w.queries {
                    std::hint::black_box(idx.query(*v, region));
                }
                let allocs =
                    allocations_during(&w.queries, |v, r| {
                        std::hint::black_box(idx.query(v, r));
                    });
                checks += 1;
                if allocs == 0 {
                    println!("ok   {} / {} / {:?}: 0 allocations", ds.name, idx.name(), policy);
                } else {
                    failures += 1;
                    eprintln!(
                        "FAIL {} / {} / {:?}: {allocs} allocations over {} steady-state queries",
                        ds.name,
                        idx.name(),
                        policy,
                        w.queries.len()
                    );
                }
            }
        }

        // The online BFS oracle shares the same scratch discipline.
        let sample = &w.queries[..w.queries.len().min(50)];
        for (v, region) in sample {
            std::hint::black_box(ds.prep.range_reach_bfs(*v, region));
        }
        let allocs = allocations_during(sample, |v, r| {
            std::hint::black_box(ds.prep.range_reach_bfs(v, r));
        });
        checks += 1;
        if allocs == 0 {
            println!("ok   {} / online BFS: 0 allocations", ds.name);
        } else {
            failures += 1;
            eprintln!(
                "FAIL {} / online BFS: {allocs} allocations over {} steady-state queries",
                ds.name,
                sample.len()
            );
        }
    }

    println!("{} zero-allocation checks, {} failures", checks, failures);
    assert!(checks >= 2 * (ALL_METHODS.len() + 1), "suite must cover every method");
    if failures > 0 {
        std::process::exit(1);
    }
}
